// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// The red-black color sweep, in a scalar and a hand-vectorized (AVX2)
// flavor behind a runtime dispatch.  GCC 12 does NOT auto-vectorize the
// stride-2 inner loop (-fopt-info-vec-missed: "couldn't vectorize loop
// ... unsupported use in stmt" -- the interleaved loads defeat its cost
// model), so the AVX2 kernel widens it by hand: four same-color nodes
// (eight consecutive cells) per iteration, with the stride-2 operands
// deinterleaved by two unaligned loads + unpacklo + a lane permute.
//
// Bitwise contract: the vector kernel performs, per node, the exact
// operation sequence of the scalar one -- the flux sum associates left
// to right, the update is t + omega * (flux / diag - t), and no FMA
// contraction happens anywhere (the kernel compiles under
// target("avx2"), which does not enable FMA, and uses explicit mul/add
// intrinsics).  IEEE doubles make each lane bitwise-equal to the scalar
// node, and the max-update reduction is order-free for the non-negative
// magnitudes it folds, so scalar and SIMD sweeps -- and therefore every
// solver result -- are bitwise identical.  Stores write ONLY the four
// relaxed nodes (scalar extraction, never a full 256-bit store): cells
// of the other color are concurrently READ by neighboring row shards,
// so rewriting them even with unchanged values would be a data race.
#include "thermal/thermal_engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define TSC3D_SWEEP_AVX2 1
#include <immintrin.h>
#else
#define TSC3D_SWEEP_AVX2 0
#endif

namespace tsc3d::thermal {

namespace {

double sweep_color_rows_scalar(const Assembly& a, double omega, double* t,
                               int color, std::size_t row_begin,
                               std::size_t row_end, const double* r,
                               const double* dg) {
  const std::size_t nx = a.nx, ny = a.ny;
  // Conductance/rhs arrays are compact (stride nx); the field uses the
  // halo layout (row stride nx + 1, layer stride (nx+1) * (ny+1)), so
  // the loop advances a compact index i and a padded index p in step.
  const std::size_t px = nx + 1;
  const std::size_t ps = px * (ny + 1);
  const double* gxm = a.g_xm.data();
  const double* gxp = a.g_xp.data();
  const double* gym = a.g_ym.data();
  const double* gyp = a.g_yp.data();
  const double* gzm = a.g_zm.data();
  const double* gzp = a.g_zp.data();

  double max_delta = 0.0;
  for (std::size_t gr = row_begin; gr < row_end; ++gr) {
    const std::size_t l = gr / ny;
    const std::size_t iy = gr % ny;
    const std::size_t row = gr * nx;
    const std::size_t prow = l * ps + iy * px;
    for (std::size_t ix = (l + iy + static_cast<std::size_t>(color)) & 1;
         ix < nx; ix += 2) {
      const std::size_t i = row + ix;
      const std::size_t p = prow + ix;
      const double flux = r[i] + gxm[i] * t[p - 1] + gxp[i] * t[p + 1] +
                          gym[i] * t[p - px] + gyp[i] * t[p + px] +
                          gzm[i] * t[p - ps] + gzp[i] * t[p + ps];
      const double delta = flux / dg[i] - t[p];
      t[p] += omega * delta;
      max_delta = std::max(max_delta, std::abs(delta));
    }
  }
  return max_delta;
}

#if TSC3D_SWEEP_AVX2

/// The even-index elements {p[0], p[2], p[4], p[6]} of eight consecutive
/// doubles: two unaligned loads, unpacklo ({p0, p4, p2, p6}), then a
/// cross-lane permute back into order.
__attribute__((target("avx2"))) inline __m256d load_even(const double* p) {
  const __m256d lo = _mm256_loadu_pd(p);
  const __m256d hi = _mm256_loadu_pd(p + 4);
  return _mm256_permute4x64_pd(_mm256_unpacklo_pd(lo, hi), 0xD8);
}

__attribute__((target("avx2"))) double sweep_color_rows_avx2(
    const Assembly& a, double omega, double* t, int color,
    std::size_t row_begin, std::size_t row_end, const double* r,
    const double* dg) {
  const std::size_t nx = a.nx, ny = a.ny;
  const std::size_t px = nx + 1;
  const std::size_t ps = px * (ny + 1);
  const double* gxm = a.g_xm.data();
  const double* gxp = a.g_xp.data();
  const double* gym = a.g_ym.data();
  const double* gyp = a.g_yp.data();
  const double* gzm = a.g_zm.data();
  const double* gzp = a.g_zp.data();

  const __m256d omega_v = _mm256_set1_pd(omega);
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  __m256d max_v = _mm256_setzero_pd();
  double max_delta = 0.0;
  for (std::size_t gr = row_begin; gr < row_end; ++gr) {
    const std::size_t l = gr / ny;
    const std::size_t iy = gr % ny;
    const std::size_t row = gr * nx;
    const std::size_t prow = l * ps + iy * px;
    std::size_t ix = (l + iy + static_cast<std::size_t>(color)) & 1;
    // Vector block: four same-color nodes spanning eight consecutive
    // cells.  Its compact-array loads reach index i + 7, so the block
    // needs ix + 8 <= nx to stay inside this row; the halo field's pad
    // cells make every FIELD access of an in-row block safe without a
    // guard.  Leftover nodes (at most four, on odd-offset rows) fall to
    // the scalar tail below.
    for (; ix + 8 <= nx; ix += 8) {
      const std::size_t i = row + ix;
      const std::size_t p = prow + ix;
      const __m256d tv = load_even(t + p);
      // Left-to-right flux sum, matching the scalar association order.
      __m256d flux = load_even(r + i);
      flux = _mm256_add_pd(
          flux, _mm256_mul_pd(load_even(gxm + i), load_even(t + p - 1)));
      flux = _mm256_add_pd(
          flux, _mm256_mul_pd(load_even(gxp + i), load_even(t + p + 1)));
      flux = _mm256_add_pd(
          flux, _mm256_mul_pd(load_even(gym + i), load_even(t + p - px)));
      flux = _mm256_add_pd(
          flux, _mm256_mul_pd(load_even(gyp + i), load_even(t + p + px)));
      flux = _mm256_add_pd(
          flux, _mm256_mul_pd(load_even(gzm + i), load_even(t + p - ps)));
      flux = _mm256_add_pd(
          flux, _mm256_mul_pd(load_even(gzp + i), load_even(t + p + ps)));
      const __m256d delta =
          _mm256_sub_pd(_mm256_div_pd(flux, load_even(dg + i)), tv);
      const __m256d tnew =
          _mm256_add_pd(tv, _mm256_mul_pd(omega_v, delta));
      // Scalar extraction: write the four relaxed nodes and nothing
      // else (see the file comment -- a full store would race with
      // other shards reading the interleaved other-color cells).
      alignas(32) double out[4];
      _mm256_store_pd(out, tnew);
      t[p] = out[0];
      t[p + 2] = out[1];
      t[p + 4] = out[2];
      t[p + 6] = out[3];
      // maxpd keeps the SECOND operand on unordered compares, exactly
      // like std::max(acc, fresh) keeps acc -- so NaN propagation (a
      // diverged solve) matches the scalar kernel too.
      max_v = _mm256_max_pd(_mm256_andnot_pd(sign_mask, delta), max_v);
    }
    for (; ix < nx; ix += 2) {
      const std::size_t i = row + ix;
      const std::size_t p = prow + ix;
      const double flux = r[i] + gxm[i] * t[p - 1] + gxp[i] * t[p + 1] +
                          gym[i] * t[p - px] + gyp[i] * t[p + px] +
                          gzm[i] * t[p - ps] + gzp[i] * t[p + ps];
      const double delta = flux / dg[i] - t[p];
      t[p] += omega * delta;
      max_delta = std::max(max_delta, std::abs(delta));
    }
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, max_v);
  for (const double v : lanes) max_delta = std::max(max_delta, v);
  return max_delta;
}

#endif  // TSC3D_SWEEP_AVX2

/// Process-wide SIMD toggle; defaults to hardware availability.
bool& simd_flag() {
  static bool enabled = sweep_simd_available();
  return enabled;
}

}  // namespace

bool sweep_simd_available() {
#if TSC3D_SWEEP_AVX2
  static const bool available = [] {
    __builtin_cpu_init();
    return __builtin_cpu_supports("avx2") != 0;
  }();
  return available;
#else
  return false;
#endif
}

void set_sweep_simd(bool enabled) {
  simd_flag() = enabled && sweep_simd_available();
}

bool sweep_simd_enabled() { return simd_flag(); }

double sweep_color_rows(const Assembly& a, double omega, double* t, int color,
                        std::size_t row_begin, std::size_t row_end,
                        const double* rhs, const double* diag) {
#if TSC3D_SWEEP_AVX2
  if (simd_flag())
    return sweep_color_rows_avx2(a, omega, t, color, row_begin, row_end, rhs,
                                 diag);
#endif
  return sweep_color_rows_scalar(a, omega, t, color, row_begin, row_end, rhs,
                                 diag);
}

}  // namespace tsc3d::thermal
