// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Mapping from a parsed ConfigFile onto the library's option structs.
// Every recognized key mirrors one documented field; unrecognized keys
// are reported via ConfigFile::unused_keys() so a typo in a config never
// silently reverts to a default.
#pragma once

#include "campaign/options.hpp"
#include "config/config_file.hpp"
#include "core/config.hpp"
#include "floorplan/floorplanner.hpp"
#include "service/options.hpp"

namespace tsc3d::config {

/// Overlay [technology] keys on `tech`:
///   flavor (tsv | monolithic), num_dies, die_width_um, die_height_um,
///   die_thickness_um, monolithic_tier_thickness_um, clock_period_ns,
///   tsv_diameter_um, tsv_pitch_um, tsv_keepout_um.
void apply_technology(const ConfigFile& cfg, TechnologyConfig& tech);

/// Overlay [thermal] keys on `thermal`:
///   grid_nx, grid_ny, ambient_k, k_silicon, k_bond, k_ild, k_tim,
///   r_convec_k_per_w, r_package_k_per_w, sor_omega, tolerance_k,
///   max_iterations.
void apply_thermal(const ConfigFile& cfg, ThermalConfig& thermal);

/// Build FloorplannerOptions from [floorplanning] keys:
///   mode (power | tsc), sa_moves, sa_stages, fast_grid, verify_grid,
///   sampling_grid, dummy_insertion, dummy_max_iterations,
///   dummy_samples, hot_modules_to_top, auto_clock_factor, threads
///   (sweep threads per thermal engine), chains (parallel-tempering
///   chains), chain_exchange_interval, chain_ladder_ratio.
/// The preset for `mode` is applied first, then individual overrides.
[[nodiscard]] floorplan::FloorplannerOptions make_floorplanner_options(
    const ConfigFile& cfg);

/// Build batch-service options from [service] keys:
///   queue_dir, cache_dir, cache, checkpoint_interval, claim_lease_s.
[[nodiscard]] service::ServiceOptions make_service_options(
    const ConfigFile& cfg);

/// Build campaign-matrix options from [campaign] keys:
///   benchmark, attacks, mitigations, flavors (comma-separated lists),
///   seeds ("A" or "A-B"), attack_grid, monitoring_trials, covert_bits,
///   dtm_duration_s, dtm_dt_s, injection_budget, leakage_phases,
///   report_dir.
[[nodiscard]] campaign::CampaignOptions make_campaign_options(
    const ConfigFile& cfg);

}  // namespace tsc3d::config
