// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Corblivar-style configuration files.  The paper's tool is driven by
// plain-text config files ("Further technical details ... are given in
// the respective default configurations of [21, 22]", Sec. 7); this
// parser accepts the same flavour of input:
//
//   # comment
//   [floorplanning]
//   mode = tsc           # or: power
//   sa_moves = 20000
//
//   [technology]
//   die_width_um = 4000
//   flavor = tsv         # or: monolithic
//
// Keys are addressed as "section.key"; keys before any section header
// live in the "" section and are addressed bare.  Parsing is strict:
// malformed lines throw ConfigError with the line number, and
// unused_keys() lets callers reject typos (every key a consumer reads is
// marked used).
#pragma once

#include <filesystem>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace tsc3d::config {

/// Parse or lookup failure; what() includes file/line context.
class ConfigError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ConfigFile {
 public:
  ConfigFile() = default;

  /// Parse from a file on disk.
  [[nodiscard]] static ConfigFile load(const std::filesystem::path& path);

  /// Parse from an in-memory string (tests, embedded defaults).
  [[nodiscard]] static ConfigFile parse(const std::string& text,
                                        const std::string& origin = "<string>");

  [[nodiscard]] bool has(const std::string& key) const;

  /// Typed getters with defaults.  Reading marks the key used.
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] std::size_t get_size(const std::string& key,
                                     std::size_t fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Required variants: throw ConfigError if the key is absent.
  [[nodiscard]] std::string require_string(const std::string& key) const;
  [[nodiscard]] double require_double(const std::string& key) const;

  /// Keys present in the file but never read -- typo detection.
  [[nodiscard]] std::vector<std::string> unused_keys() const;

  /// All keys, for introspection.
  [[nodiscard]] std::vector<std::string> keys() const;

  /// Canonical text form: one "section.key = value" line per entry in
  /// sorted key order, independent of source formatting, comments, or
  /// section ordering.  Two configs with identical semantics render
  /// identically, so the batch service hashes this to build cache keys.
  /// Does not mark any key used.
  [[nodiscard]] std::string canonical() const;

 private:
  void insert(const std::string& key, const std::string& value,
              std::size_t line);

  std::string origin_;
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> used_;
};

}  // namespace tsc3d::config
