#include "config/apply.hpp"

#include <sstream>

namespace tsc3d::config {

namespace {

/// Split a comma-separated config value into trimmed, non-empty items.
std::vector<std::string> split_list(const std::string& value) {
  std::vector<std::string> items;
  std::istringstream in(value);
  std::string item;
  while (std::getline(in, item, ',')) {
    const auto first = item.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    const auto last = item.find_last_not_of(" \t");
    items.push_back(item.substr(first, last - first + 1));
  }
  return items;
}

}  // namespace

void apply_technology(const ConfigFile& cfg, TechnologyConfig& tech) {
  const std::string flavor =
      cfg.get_string("technology.flavor",
                     tech.flavor == IntegrationFlavor::monolithic
                         ? "monolithic"
                         : "tsv");
  if (flavor == "monolithic") {
    tech = make_monolithic(tech);
  } else if (flavor == "tsv") {
    tech.flavor = IntegrationFlavor::tsv_based;
  } else {
    throw ConfigError("technology.flavor must be 'tsv' or 'monolithic', got '" +
                      flavor + "'");
  }
  tech.num_dies = cfg.get_size("technology.num_dies", tech.num_dies);
  tech.die_width_um =
      cfg.get_double("technology.die_width_um", tech.die_width_um);
  tech.die_height_um =
      cfg.get_double("technology.die_height_um", tech.die_height_um);
  tech.die_thickness_um =
      cfg.get_double("technology.die_thickness_um", tech.die_thickness_um);
  tech.monolithic_tier_thickness_um =
      cfg.get_double("technology.monolithic_tier_thickness_um",
                     tech.monolithic_tier_thickness_um);
  tech.clock_period_ns =
      cfg.get_double("technology.clock_period_ns", tech.clock_period_ns);
  tech.tsv.diameter_um =
      cfg.get_double("technology.tsv_diameter_um", tech.tsv.diameter_um);
  tech.tsv.pitch_um =
      cfg.get_double("technology.tsv_pitch_um", tech.tsv.pitch_um);
  tech.tsv.keepout_um =
      cfg.get_double("technology.tsv_keepout_um", tech.tsv.keepout_um);
  tech.validate();
}

void apply_thermal(const ConfigFile& cfg, ThermalConfig& thermal) {
  thermal.grid_nx = cfg.get_size("thermal.grid_nx", thermal.grid_nx);
  thermal.grid_ny = cfg.get_size("thermal.grid_ny", thermal.grid_ny);
  thermal.ambient_k = cfg.get_double("thermal.ambient_k", thermal.ambient_k);
  thermal.k_silicon = cfg.get_double("thermal.k_silicon", thermal.k_silicon);
  thermal.k_bond = cfg.get_double("thermal.k_bond", thermal.k_bond);
  thermal.k_ild = cfg.get_double("thermal.k_ild", thermal.k_ild);
  thermal.k_tim = cfg.get_double("thermal.k_tim", thermal.k_tim);
  thermal.r_convec_k_per_w =
      cfg.get_double("thermal.r_convec_k_per_w", thermal.r_convec_k_per_w);
  thermal.r_package_k_per_w =
      cfg.get_double("thermal.r_package_k_per_w", thermal.r_package_k_per_w);
  thermal.sor_omega = cfg.get_double("thermal.sor_omega", thermal.sor_omega);
  thermal.tolerance_k =
      cfg.get_double("thermal.tolerance_k", thermal.tolerance_k);
  thermal.max_iterations =
      cfg.get_size("thermal.max_iterations", thermal.max_iterations);
  const std::string solver = cfg.get_string(
      "thermal.solver",
      thermal.solver == SolverBackend::multigrid
          ? "multigrid"
          : (thermal.solver == SolverBackend::sor ? "sor" : "auto"));
  if (solver == "sor") {
    thermal.solver = SolverBackend::sor;
  } else if (solver == "multigrid") {
    thermal.solver = SolverBackend::multigrid;
  } else if (solver == "auto") {
    thermal.solver = SolverBackend::auto_select;
  } else {
    throw ConfigError(
        "thermal.solver must be 'auto', 'sor' or 'multigrid', got '" +
        solver + "'");
  }
  thermal.mg_levels = cfg.get_size("thermal.mg_levels", thermal.mg_levels);
  thermal.mg_smooth_sweeps =
      cfg.get_size("thermal.mg_smooth_sweeps", thermal.mg_smooth_sweeps);
  thermal.mg_fmg = cfg.get_bool("thermal.mg_fmg", thermal.mg_fmg);
  thermal.validate();
}

floorplan::FloorplannerOptions make_floorplanner_options(
    const ConfigFile& cfg) {
  const std::string mode = cfg.get_string("floorplanning.mode", "power");
  floorplan::FloorplannerOptions opt;
  if (mode == "tsc") {
    opt = floorplan::Floorplanner::tsc_aware_setup();
  } else if (mode == "power") {
    opt = floorplan::Floorplanner::power_aware_setup();
  } else {
    throw ConfigError("floorplanning.mode must be 'power' or 'tsc', got '" +
                      mode + "'");
  }
  opt.anneal.total_moves =
      cfg.get_size("floorplanning.sa_moves", opt.anneal.total_moves);
  opt.anneal.stages =
      cfg.get_size("floorplanning.sa_stages", opt.anneal.stages);
  opt.fast_grid = cfg.get_size("floorplanning.fast_grid", opt.fast_grid);
  opt.verify_grid =
      cfg.get_size("floorplanning.verify_grid", opt.verify_grid);
  opt.sampling_grid =
      cfg.get_size("floorplanning.sampling_grid", opt.sampling_grid);
  opt.dummy_insertion =
      cfg.get_bool("floorplanning.dummy_insertion", opt.dummy_insertion);
  opt.dummy.max_iterations = cfg.get_size(
      "floorplanning.dummy_max_iterations", opt.dummy.max_iterations);
  opt.dummy.samples_per_iteration = cfg.get_size(
      "floorplanning.dummy_samples", opt.dummy.samples_per_iteration);
  opt.hot_modules_to_top = cfg.get_bool("floorplanning.hot_modules_to_top",
                                        opt.hot_modules_to_top);
  opt.auto_clock_factor = cfg.get_double("floorplanning.auto_clock_factor",
                                         opt.auto_clock_factor);
  opt.anneal.batch_candidates = cfg.get_size(
      "floorplanning.batch_candidates", opt.anneal.batch_candidates);
  opt.anneal.inner_tolerance_scale =
      cfg.get_double("floorplanning.inner_tolerance_scale",
                     opt.anneal.inner_tolerance_scale);
  opt.detailed_inner_thermal = cfg.get_bool(
      "floorplanning.detailed_inner_thermal", opt.detailed_inner_thermal);
  opt.parallel.threads =
      cfg.get_size("floorplanning.threads", opt.parallel.threads);
  opt.chains.chains = cfg.get_size("floorplanning.chains", opt.chains.chains);
  opt.chains.exchange_interval =
      cfg.get_size("floorplanning.chain_exchange_interval",
                   opt.chains.exchange_interval);
  opt.chains.ladder_ratio = cfg.get_double("floorplanning.chain_ladder_ratio",
                                           opt.chains.ladder_ratio);
  opt.incremental_eval =
      cfg.get_bool("floorplanning.incremental_eval", opt.incremental_eval);
  opt.anneal.transactional =
      cfg.get_bool("floorplanning.transactional", opt.anneal.transactional);
  opt.cross_check_interval = cfg.get_size(
      "floorplanning.cross_check_interval", opt.cross_check_interval);
  apply_thermal(cfg, opt.thermal);
  return opt;
}

service::ServiceOptions make_service_options(const ConfigFile& cfg) {
  service::ServiceOptions opt;
  opt.queue_dir = cfg.get_string("service.queue_dir", opt.queue_dir);
  opt.cache_dir = cfg.get_string("service.cache_dir", opt.cache_dir);
  opt.cache = cfg.get_bool("service.cache", opt.cache);
  opt.checkpoint_interval = cfg.get_size("service.checkpoint_interval",
                                         opt.checkpoint_interval);
  opt.claim_lease_s =
      cfg.get_double("service.claim_lease_s", opt.claim_lease_s);
  if (opt.checkpoint_interval == 0)
    throw ConfigError("service.checkpoint_interval must be >= 1");
  if (opt.claim_lease_s < 0.0)
    throw ConfigError("service.claim_lease_s must be >= 0");
  return opt;
}

campaign::CampaignOptions make_campaign_options(const ConfigFile& cfg) {
  campaign::CampaignOptions opt;
  opt.benchmark = cfg.get_string("campaign.benchmark", opt.benchmark);

  try {
    if (std::string v = cfg.get_string("campaign.attacks", ""); !v.empty()) {
      opt.attacks.clear();
      for (const std::string& name : split_list(v))
        opt.attacks.push_back(campaign::parse_attack(name));
    }
    if (std::string v = cfg.get_string("campaign.mitigations", "");
        !v.empty()) {
      opt.mitigations.clear();
      for (const std::string& name : split_list(v))
        opt.mitigations.push_back(campaign::parse_mitigation(name));
    }
    if (std::string v = cfg.get_string("campaign.flavors", ""); !v.empty()) {
      opt.flavors.clear();
      for (const std::string& name : split_list(v))
        opt.flavors.push_back(campaign::parse_flavor(name));
    }
  } catch (const std::invalid_argument& e) {
    throw ConfigError(std::string("[campaign] ") + e.what());
  }

  // seeds = "A" (single seed) or "A-B" (inclusive range).
  if (const std::string v = cfg.get_string("campaign.seeds", ""); !v.empty()) {
    const auto dash = v.find('-');
    try {
      if (dash == std::string::npos) {
        opt.seed_lo = opt.seed_hi = std::stoull(v);
      } else {
        opt.seed_lo = std::stoull(v.substr(0, dash));
        opt.seed_hi = std::stoull(v.substr(dash + 1));
      }
    } catch (const std::exception&) {
      throw ConfigError("campaign.seeds must be 'A' or 'A-B', got '" + v +
                        "'");
    }
    if (opt.seed_hi < opt.seed_lo)
      throw ConfigError("campaign.seeds range is empty: '" + v + "'");
  }

  opt.attack_grid = cfg.get_size("campaign.attack_grid", opt.attack_grid);
  opt.monitoring_trials =
      cfg.get_size("campaign.monitoring_trials", opt.monitoring_trials);
  opt.covert_bits = cfg.get_size("campaign.covert_bits", opt.covert_bits);
  opt.dtm_duration_s =
      cfg.get_double("campaign.dtm_duration_s", opt.dtm_duration_s);
  opt.dtm_dt_s = cfg.get_double("campaign.dtm_dt_s", opt.dtm_dt_s);
  opt.injection_budget =
      cfg.get_double("campaign.injection_budget", opt.injection_budget);
  opt.leakage_phases =
      cfg.get_size("campaign.leakage_phases", opt.leakage_phases);
  opt.report_dir = cfg.get_string("campaign.report_dir", opt.report_dir);

  if (opt.attack_grid < 4)
    throw ConfigError("campaign.attack_grid must be >= 4");
  if (opt.leakage_phases < 3)
    throw ConfigError("campaign.leakage_phases must be >= 3 (SVF needs it)");
  if (opt.dtm_duration_s <= 0.0 || opt.dtm_dt_s <= 0.0)
    throw ConfigError("campaign.dtm_duration_s / dtm_dt_s must be > 0");
  if (opt.injection_budget < 0.0)
    throw ConfigError("campaign.injection_budget must be >= 0");
  if (opt.monitoring_trials == 0)
    throw ConfigError("campaign.monitoring_trials must be >= 1");
  if (opt.covert_bits == 0)
    throw ConfigError("campaign.covert_bits must be >= 1");
  return opt;
}

}  // namespace tsc3d::config
