#include "config/config_file.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace tsc3d::config {

namespace {

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return {};
  const auto last = s.find_last_not_of(" \t\r\n");
  return s.substr(first, last - first + 1);
}

std::string strip_comment(const std::string& line) {
  const auto hash = line.find('#');
  return hash == std::string::npos ? line : line.substr(0, hash);
}

}  // namespace

ConfigFile ConfigFile::load(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in)
    throw ConfigError("cannot open config file: " + path.string());
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str(), path.string());
}

ConfigFile ConfigFile::parse(const std::string& text,
                             const std::string& origin) {
  ConfigFile cfg;
  cfg.origin_ = origin;
  std::istringstream in(text);
  std::string raw, section;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = trim(strip_comment(raw));
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']')
        throw ConfigError(origin + ":" + std::to_string(line_no) +
                          ": unterminated section header");
      section = trim(line.substr(1, line.size() - 2));
      if (section.empty())
        throw ConfigError(origin + ":" + std::to_string(line_no) +
                          ": empty section name");
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos)
      throw ConfigError(origin + ":" + std::to_string(line_no) +
                        ": expected 'key = value', got '" + line + "'");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty())
      throw ConfigError(origin + ":" + std::to_string(line_no) +
                        ": empty key");
    cfg.insert(section.empty() ? key : section + "." + key, value, line_no);
  }
  return cfg;
}

void ConfigFile::insert(const std::string& key, const std::string& value,
                        std::size_t line) {
  if (values_.contains(key))
    throw ConfigError(origin_ + ":" + std::to_string(line) +
                      ": duplicate key '" + key + "'");
  values_[key] = value;
}

bool ConfigFile::has(const std::string& key) const {
  return values_.contains(key);
}

std::string ConfigFile::get_string(const std::string& key,
                                   const std::string& fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  used_.insert(key);
  return it->second;
}

double ConfigFile::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  used_.insert(key);
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size())
      throw ConfigError(origin_ + ": key '" + key +
                        "': trailing characters in number '" + it->second +
                        "'");
    return v;
  } catch (const std::invalid_argument&) {
    throw ConfigError(origin_ + ": key '" + key + "': not a number: '" +
                      it->second + "'");
  }
}

std::size_t ConfigFile::get_size(const std::string& key,
                                 std::size_t fallback) const {
  const double v = get_double(key, static_cast<double>(fallback));
  if (v < 0.0 || v != static_cast<double>(static_cast<std::size_t>(v)))
    throw ConfigError(origin_ + ": key '" + key +
                      "': expected a non-negative integer");
  return static_cast<std::size_t>(v);
}

bool ConfigFile::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  used_.insert(key);
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw ConfigError(origin_ + ": key '" + key + "': not a boolean: '" +
                    it->second + "'");
}

std::string ConfigFile::require_string(const std::string& key) const {
  if (!has(key))
    throw ConfigError(origin_ + ": missing required key '" + key + "'");
  return get_string(key, {});
}

double ConfigFile::require_double(const std::string& key) const {
  if (!has(key))
    throw ConfigError(origin_ + ": missing required key '" + key + "'");
  return get_double(key, 0.0);
}

std::vector<std::string> ConfigFile::unused_keys() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_)
    if (!used_.contains(key)) out.push_back(key);
  return out;
}

std::vector<std::string> ConfigFile::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [key, value] : values_) out.push_back(key);
  return out;
}

std::string ConfigFile::canonical() const {
  std::string out;
  for (const auto& [key, value] : values_) {  // std::map: sorted order
    out += key;
    out += " = ";
    out += value;
    out += "\n";
  }
  return out;
}

}  // namespace tsc3d::config
