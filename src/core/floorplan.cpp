#include "floorplan.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace tsc3d {

std::vector<std::size_t> Floorplan3D::modules_on_die(std::size_t d) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    if (modules_[i].die == d) out.push_back(i);
  }
  return out;
}

double Floorplan3D::effective_power(std::size_t i) const {
  const Module& m = modules_.at(i);
  const auto& levels = tech_.voltages;
  const std::size_t vi = std::min(m.voltage_index, levels.size() - 1);
  return m.power_w * levels[vi].power_scale;
}

double Floorplan3D::total_power() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < modules_.size(); ++i) sum += effective_power(i);
  return sum;
}

double Floorplan3D::utilization(std::size_t d) const {
  double area = 0.0;
  for (const Module& m : modules_) {
    if (m.die == d) area += m.shape.area();
  }
  return area / tech_.die_area_um2();
}

GridD Floorplan3D::power_map(std::size_t d, std::size_t nx, std::size_t ny,
                             const std::vector<double>* module_power_w) const {
  GridD map(nx, ny, 0.0);
  const double bw = tech_.die_width_um / static_cast<double>(nx);
  const double bh = tech_.die_height_um / static_cast<double>(ny);
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    const Module& m = modules_[i];
    if (m.die != d) continue;
    const double p =
        module_power_w != nullptr ? (*module_power_w)[i] : effective_power(i);
    const double a = m.shape.area();
    if (p <= 0.0 || a <= 0.0) continue;
    const double density = p / a;  // W per um^2
    // Bin range touched by the module; distribute by exact overlap area.
    const auto ix0 = static_cast<std::size_t>(
        std::clamp(m.shape.x / bw, 0.0, static_cast<double>(nx - 1)));
    const auto iy0 = static_cast<std::size_t>(
        std::clamp(m.shape.y / bh, 0.0, static_cast<double>(ny - 1)));
    const auto ix1 = static_cast<std::size_t>(std::clamp(
        m.shape.right() / bw, 0.0, static_cast<double>(nx - 1)));
    const auto iy1 = static_cast<std::size_t>(std::clamp(
        m.shape.top() / bh, 0.0, static_cast<double>(ny - 1)));
    for (std::size_t iy = iy0; iy <= iy1; ++iy) {
      for (std::size_t ix = ix0; ix <= ix1; ++ix) {
        const Rect bin{static_cast<double>(ix) * bw,
                       static_cast<double>(iy) * bh, bw, bh};
        const double ov = overlap_area(bin, m.shape);
        if (ov > 0.0) map.at(ix, iy) += density * ov;
      }
    }
  }
  return map;
}

GridD Floorplan3D::power_density_map(std::size_t d, std::size_t nx,
                                     std::size_t ny) const {
  GridD map = power_map(d, nx, ny);
  const double bin_area = (tech_.die_width_um / static_cast<double>(nx)) *
                          (tech_.die_height_um / static_cast<double>(ny));
  map *= 1.0 / bin_area;
  return map;
}

Rect Floorplan3D::tsv_island_rect(const Tsv& t) const {
  const double cell = tech_.tsv.cell_edge_um();
  // Islands pack TSVs at minimal pitch into a near-square footprint.
  const double cols =
      std::ceil(std::sqrt(static_cast<double>(std::max<std::size_t>(t.count, 1))));
  const double edge_x = cols * cell;
  const double rows = std::ceil(static_cast<double>(t.count) / cols);
  const double edge_y = rows * cell;
  return Rect{t.position.x - edge_x / 2.0, t.position.y - edge_y / 2.0, edge_x,
              edge_y};
}

GridD Floorplan3D::tsv_density_map(std::size_t nx, std::size_t ny,
                                   bool include_dummy) const {
  GridD map(nx, ny, 0.0);
  const double bw = tech_.die_width_um / static_cast<double>(nx);
  const double bh = tech_.die_height_um / static_cast<double>(ny);
  const double bin_area = bw * bh;
  for (const Tsv& t : tsvs_) {
    if (!include_dummy && t.kind == TsvKind::dummy) continue;
    const Rect island = tsv_island_rect(t);
    const auto ix0 = static_cast<std::size_t>(
        std::clamp(island.x / bw, 0.0, static_cast<double>(nx - 1)));
    const auto iy0 = static_cast<std::size_t>(
        std::clamp(island.y / bh, 0.0, static_cast<double>(ny - 1)));
    const auto ix1 = static_cast<std::size_t>(std::clamp(
        island.right() / bw, 0.0, static_cast<double>(nx - 1)));
    const auto iy1 = static_cast<std::size_t>(std::clamp(
        island.top() / bh, 0.0, static_cast<double>(ny - 1)));
    for (std::size_t iy = iy0; iy <= iy1; ++iy) {
      for (std::size_t ix = ix0; ix <= ix1; ++ix) {
        const Rect bin{static_cast<double>(ix) * bw,
                       static_cast<double>(iy) * bh, bw, bh};
        map.at(ix, iy) += overlap_area(bin, island) / bin_area;
      }
    }
  }
  for (auto& v : map) v = std::min(v, 1.0);
  return map;
}

std::size_t Floorplan3D::tsv_count(TsvKind kind) const {
  std::size_t n = 0;
  for (const Tsv& t : tsvs_) {
    if (t.kind == kind) n += t.count;
  }
  return n;
}

double Floorplan3D::net_box_len(const Net& net) const {
  double x0 = 0.0, x1 = 0.0, y0 = 0.0, y1 = 0.0;
  bool first = true;
  for (const NetPin& pin : net.pins) {
    Point p;
    if (pin.is_terminal()) {
      p = terminals_.at(pin.terminal).position;
    } else {
      p = modules_.at(pin.module).shape.center();
    }
    if (first) {
      x0 = x1 = p.x;
      y0 = y1 = p.y;
      first = false;
    } else {
      x0 = std::min(x0, p.x);
      x1 = std::max(x1, p.x);
      y0 = std::min(y0, p.y);
      y1 = std::max(y1, p.y);
    }
  }
  return (x1 - x0) + (y1 - y0);
}

double Floorplan3D::net_hpwl(const Net& net) const {
  if (net.pins.size() < 2) return 0.0;
  return net.weight * net_box_len(net);
}

double Floorplan3D::hpwl() const {
  // Full recompute, summing per-net boxes in canonical net order.  The
  // incremental hpwl_cached() recomputes only dirty nets with the SAME
  // per-net arithmetic and re-sums in the SAME order, so the two are
  // bitwise-equal whenever the tracking invariant holds.
  double total = 0.0;
  for (const Net& net : nets_) total += net_hpwl(net);
  return total;
}

// --- incremental layout tracking -----------------------------------------

void Floorplan3D::ensure_net_index() const {
  if (net_index_ready_ && nets_of_module_.size() == modules_.size() &&
      net_epoch_.size() == nets_.size())
    return;
  nets_of_module_.assign(modules_.size(), {});
  for (std::size_t n = 0; n < nets_.size(); ++n) {
    for (const NetPin& pin : nets_[n].pins) {
      if (!pin.is_terminal() && pin.module < modules_.size())
        nets_of_module_[pin.module].push_back(n);
    }
  }
  // Fresh epochs strictly above anything handed out before, so every
  // external per-net cache keyed on old epochs misses after a rebuild.
  net_epoch_.assign(nets_.size(), ++layout_epoch_);
  net_die_epoch_.assign(nets_.size(), layout_epoch_);
  net_index_ready_ = true;
}

void Floorplan3D::ensure_die_caches() const {
  if (die_bounds_.size() != tech_.num_dies) {
    die_bounds_.assign(tech_.num_dies, DieBounds{});
    die_bounds_valid_.assign(tech_.num_dies, false);
    die_stamp_.assign(tech_.num_dies, LayoutStamp{});
  }
}

void Floorplan3D::note_module_moved(std::size_t i, bool die_changed) {
  ensure_net_index();
  ensure_die_caches();
  ++layout_epoch_;
  for (const std::size_t n : nets_of_module_[i]) {
    if (trial_active_) trial_save_net(n);
    net_epoch_[n] = layout_epoch_;
    if (die_changed) net_die_epoch_[n] = layout_epoch_;
  }
  const std::size_t d = modules_[i].die;
  if (d < die_bounds_valid_.size()) {
    if (trial_active_) trial_save_die(d);
    die_bounds_valid_[d] = false;
  }
}

const std::vector<std::size_t>& Floorplan3D::nets_of_module(
    std::size_t i) const {
  ensure_net_index();
  return nets_of_module_.at(i);
}

std::uint64_t Floorplan3D::net_epoch(std::size_t n) const {
  ensure_net_index();
  return net_epoch_.at(n);
}

std::uint64_t Floorplan3D::net_die_epoch(std::size_t n) const {
  ensure_net_index();
  return net_die_epoch_.at(n);
}

const std::vector<std::uint64_t>& Floorplan3D::net_epochs() const {
  ensure_net_index();
  return net_epoch_;
}

const std::vector<std::uint64_t>& Floorplan3D::net_die_epochs() const {
  ensure_net_index();
  return net_die_epoch_;
}

double Floorplan3D::hpwl_cached() {
  ensure_net_index();
  if (net_hpwl_cache_.size() != nets_.size()) {
    net_hpwl_cache_.assign(nets_.size(), 0.0);
    net_len_cache_.assign(nets_.size(), 0.0);
    net_hpwl_epoch_.assign(nets_.size(), 0);
  }
  double total = 0.0;
  for (std::size_t n = 0; n < nets_.size(); ++n) {
    if (net_hpwl_epoch_[n] != net_epoch_[n]) {
      if (trial_active_) trial_save_net(n);
      // One scan serves both the weighted HPWL term and, via
      // net_length_cached(), the timing engine's wire length.
      const double len = net_box_len(nets_[n]);
      net_len_cache_[n] = len;
      net_hpwl_cache_[n] =
          nets_[n].pins.size() < 2 ? 0.0 : nets_[n].weight * len;
      net_hpwl_epoch_[n] = net_epoch_[n];
    }
    total += net_hpwl_cache_[n];
  }
  return total;
}

bool Floorplan3D::net_length_cached(std::size_t n, double& len_um) const {
  if (n >= net_hpwl_epoch_.size() || n >= net_len_cache_.size() ||
      n >= net_epoch_.size() || net_hpwl_epoch_[n] != net_epoch_[n])
    return false;
  len_um = net_len_cache_[n];
  return true;
}

Floorplan3D::DieBounds Floorplan3D::die_bounds(std::size_t d) const {
  ensure_die_caches();
  if (!die_bounds_valid_.at(d)) {
    if (trial_active_) trial_save_die(d);
    DieBounds b;
    for (const Module& m : modules_) {
      if (m.die != d) continue;
      b.width = std::max(b.width, m.shape.right());
      b.height = std::max(b.height, m.shape.top());
    }
    die_bounds_[d] = b;
    die_bounds_valid_[d] = true;
  }
  return die_bounds_[d];
}

void Floorplan3D::set_die_bounds(std::size_t d, double width, double height) {
  ensure_die_caches();
  if (trial_active_) trial_save_die(d);
  die_bounds_.at(d) = DieBounds{width, height};
  die_bounds_valid_[d] = true;
}

bool Floorplan3D::layout_stamp_matches(std::size_t d, std::uint64_t family,
                                       std::uint64_t version) const {
  ensure_die_caches();
  if (family == 0 || d >= die_stamp_.size()) return false;
  return die_stamp_[d].family == family && die_stamp_[d].version == version;
}

void Floorplan3D::set_layout_stamp(std::size_t d, std::uint64_t family,
                                   std::uint64_t version) {
  ensure_die_caches();
  if (d < die_stamp_.size()) {
    if (trial_active_) trial_save_die(d);
    die_stamp_[d] = LayoutStamp{family, version};
  }
}

// --- trial (speculative) layout mutation ----------------------------------

void Floorplan3D::begin_trial() {
  if (trial_active_)
    throw std::logic_error("Floorplan3D::begin_trial: trial already open");
  // Build the lazy structures now: a mid-trial rebuild would reassign
  // every net epoch and could not be unwound.
  ensure_net_index();
  ensure_die_caches();
  if (trial_mark_module_.size() != modules_.size())
    trial_mark_module_.assign(modules_.size(), 0);
  if (trial_mark_net_.size() != nets_.size())
    trial_mark_net_.assign(nets_.size(), 0);
  if (trial_mark_die_.size() != tech_.num_dies)
    trial_mark_die_.assign(tech_.num_dies, 0);
  ++trial_id_;
  trial_modules_.clear();
  trial_nets_.clear();
  trial_dies_.clear();
  trial_active_ = true;
}

void Floorplan3D::commit_trial() {
  if (!trial_active_)
    throw std::logic_error("Floorplan3D::commit_trial: no trial open");
  trial_active_ = false;
  trial_modules_.clear();
  trial_nets_.clear();
  trial_dies_.clear();
}

void Floorplan3D::rollback_trial() {
  if (!trial_active_)
    throw std::logic_error("Floorplan3D::rollback_trial: no trial open");
  trial_active_ = false;
  for (const TrialModule& jm : trial_modules_) {
    modules_[jm.i].shape = jm.shape;
    modules_[jm.i].die = jm.die;
  }
  for (const TrialNet& jn : trial_nets_) {
    net_epoch_[jn.n] = jn.epoch;
    net_die_epoch_[jn.n] = jn.die_epoch;
    if (jn.n < net_hpwl_epoch_.size()) {
      if (jn.had_hpwl) {
        net_hpwl_epoch_[jn.n] = jn.hpwl_epoch;
        net_hpwl_cache_[jn.n] = jn.hpwl;
        net_len_cache_[jn.n] = jn.len;
      } else {
        // The cache rows were created mid-trial; mark never-computed so
        // the next hpwl_cached() recomputes from the restored positions.
        net_hpwl_epoch_[jn.n] = 0;
      }
    }
  }
  for (const TrialDie& jd : trial_dies_) {
    die_bounds_[jd.d] = jd.bounds;
    die_bounds_valid_[jd.d] = jd.bounds_valid;
    die_stamp_[jd.d] = jd.stamp;
  }
  trial_modules_.clear();
  trial_nets_.clear();
  trial_dies_.clear();
}

void Floorplan3D::trial_save_module(std::size_t i) {
  if (!trial_active_ || trial_mark_module_[i] == trial_id_) return;
  trial_mark_module_[i] = trial_id_;
  trial_modules_.push_back(
      TrialModule{i, modules_[i].shape, modules_[i].die});
}

void Floorplan3D::trial_save_net(std::size_t n) const {
  if (trial_mark_net_[n] == trial_id_) return;
  trial_mark_net_[n] = trial_id_;
  TrialNet jn;
  jn.n = n;
  jn.epoch = net_epoch_[n];
  jn.die_epoch = net_die_epoch_[n];
  if (n < net_hpwl_epoch_.size()) {
    jn.had_hpwl = true;
    jn.hpwl_epoch = net_hpwl_epoch_[n];
    jn.hpwl = net_hpwl_cache_[n];
    jn.len = net_len_cache_[n];
  }
  trial_nets_.push_back(jn);
}

void Floorplan3D::trial_save_die(std::size_t d) const {
  if (trial_mark_die_[d] == trial_id_) return;
  trial_mark_die_[d] = trial_id_;
  trial_dies_.push_back(
      TrialDie{d, die_bounds_[d], die_bounds_valid_[d] != false,
               die_stamp_[d]});
}

void Floorplan3D::invalidate_layout_caches() {
  if (trial_active_)
    throw std::logic_error(
        "Floorplan3D::invalidate_layout_caches: trial open -- commit or "
        "roll back first");
  net_index_ready_ = false;
  nets_of_module_.clear();
  net_epoch_.clear();
  net_die_epoch_.clear();
  net_hpwl_cache_.clear();
  net_len_cache_.clear();
  net_hpwl_epoch_.clear();
  die_stamp_.clear();
  die_bounds_.clear();
  die_bounds_valid_.clear();
  ++layout_epoch_;
}

LegalityReport Floorplan3D::check_legality() const {
  LegalityReport report;
  const Rect bounds = outline();
  // Outline containment.
  for (const Module& m : modules_) {
    if (!bounds.contains(m.shape)) {
      report.legal = false;
      ++report.outline_violations;
      report.outline_excess_um2 +=
          m.shape.area() - overlap_area(m.shape, bounds);
      std::ostringstream oss;
      oss << "module " << m.name << " leaves the outline on die " << m.die;
      report.violations.push_back(oss.str());
    }
  }
  // Pairwise overlaps, per die.
  for (std::size_t d = 0; d < tech_.num_dies; ++d) {
    const auto on_die = modules_on_die(d);
    for (std::size_t a = 0; a < on_die.size(); ++a) {
      for (std::size_t b = a + 1; b < on_die.size(); ++b) {
        const Module& ma = modules_[on_die[a]];
        const Module& mb = modules_[on_die[b]];
        const double ov = overlap_area(ma.shape, mb.shape);
        if (ov > 0.0) {
          report.legal = false;
          ++report.overlap_count;
          report.overlap_area_um2 += ov;
          std::ostringstream oss;
          oss << "modules " << ma.name << " and " << mb.name
              << " overlap on die " << d << " by " << ov << " um^2";
          report.violations.push_back(oss.str());
        }
      }
    }
  }
  return report;
}

}  // namespace tsc3d
