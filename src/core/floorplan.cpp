#include "floorplan.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace tsc3d {

std::vector<std::size_t> Floorplan3D::modules_on_die(std::size_t d) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    if (modules_[i].die == d) out.push_back(i);
  }
  return out;
}

double Floorplan3D::effective_power(std::size_t i) const {
  const Module& m = modules_.at(i);
  const auto& levels = tech_.voltages;
  const std::size_t vi = std::min(m.voltage_index, levels.size() - 1);
  return m.power_w * levels[vi].power_scale;
}

double Floorplan3D::total_power() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < modules_.size(); ++i) sum += effective_power(i);
  return sum;
}

double Floorplan3D::utilization(std::size_t d) const {
  double area = 0.0;
  for (const Module& m : modules_) {
    if (m.die == d) area += m.shape.area();
  }
  return area / tech_.die_area_um2();
}

GridD Floorplan3D::power_map(std::size_t d, std::size_t nx, std::size_t ny,
                             const std::vector<double>* module_power_w) const {
  GridD map(nx, ny, 0.0);
  const double bw = tech_.die_width_um / static_cast<double>(nx);
  const double bh = tech_.die_height_um / static_cast<double>(ny);
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    const Module& m = modules_[i];
    if (m.die != d) continue;
    const double p =
        module_power_w != nullptr ? (*module_power_w)[i] : effective_power(i);
    const double a = m.shape.area();
    if (p <= 0.0 || a <= 0.0) continue;
    const double density = p / a;  // W per um^2
    // Bin range touched by the module; distribute by exact overlap area.
    const auto ix0 = static_cast<std::size_t>(
        std::clamp(m.shape.x / bw, 0.0, static_cast<double>(nx - 1)));
    const auto iy0 = static_cast<std::size_t>(
        std::clamp(m.shape.y / bh, 0.0, static_cast<double>(ny - 1)));
    const auto ix1 = static_cast<std::size_t>(std::clamp(
        m.shape.right() / bw, 0.0, static_cast<double>(nx - 1)));
    const auto iy1 = static_cast<std::size_t>(std::clamp(
        m.shape.top() / bh, 0.0, static_cast<double>(ny - 1)));
    for (std::size_t iy = iy0; iy <= iy1; ++iy) {
      for (std::size_t ix = ix0; ix <= ix1; ++ix) {
        const Rect bin{static_cast<double>(ix) * bw,
                       static_cast<double>(iy) * bh, bw, bh};
        const double ov = overlap_area(bin, m.shape);
        if (ov > 0.0) map.at(ix, iy) += density * ov;
      }
    }
  }
  return map;
}

GridD Floorplan3D::power_density_map(std::size_t d, std::size_t nx,
                                     std::size_t ny) const {
  GridD map = power_map(d, nx, ny);
  const double bin_area = (tech_.die_width_um / static_cast<double>(nx)) *
                          (tech_.die_height_um / static_cast<double>(ny));
  map *= 1.0 / bin_area;
  return map;
}

Rect Floorplan3D::tsv_island_rect(const Tsv& t) const {
  const double cell = tech_.tsv.cell_edge_um();
  // Islands pack TSVs at minimal pitch into a near-square footprint.
  const double cols =
      std::ceil(std::sqrt(static_cast<double>(std::max<std::size_t>(t.count, 1))));
  const double edge_x = cols * cell;
  const double rows = std::ceil(static_cast<double>(t.count) / cols);
  const double edge_y = rows * cell;
  return Rect{t.position.x - edge_x / 2.0, t.position.y - edge_y / 2.0, edge_x,
              edge_y};
}

GridD Floorplan3D::tsv_density_map(std::size_t nx, std::size_t ny,
                                   bool include_dummy) const {
  GridD map(nx, ny, 0.0);
  const double bw = tech_.die_width_um / static_cast<double>(nx);
  const double bh = tech_.die_height_um / static_cast<double>(ny);
  const double bin_area = bw * bh;
  for (const Tsv& t : tsvs_) {
    if (!include_dummy && t.kind == TsvKind::dummy) continue;
    const Rect island = tsv_island_rect(t);
    const auto ix0 = static_cast<std::size_t>(
        std::clamp(island.x / bw, 0.0, static_cast<double>(nx - 1)));
    const auto iy0 = static_cast<std::size_t>(
        std::clamp(island.y / bh, 0.0, static_cast<double>(ny - 1)));
    const auto ix1 = static_cast<std::size_t>(std::clamp(
        island.right() / bw, 0.0, static_cast<double>(nx - 1)));
    const auto iy1 = static_cast<std::size_t>(std::clamp(
        island.top() / bh, 0.0, static_cast<double>(ny - 1)));
    for (std::size_t iy = iy0; iy <= iy1; ++iy) {
      for (std::size_t ix = ix0; ix <= ix1; ++ix) {
        const Rect bin{static_cast<double>(ix) * bw,
                       static_cast<double>(iy) * bh, bw, bh};
        map.at(ix, iy) += overlap_area(bin, island) / bin_area;
      }
    }
  }
  for (auto& v : map) v = std::min(v, 1.0);
  return map;
}

std::size_t Floorplan3D::tsv_count(TsvKind kind) const {
  std::size_t n = 0;
  for (const Tsv& t : tsvs_) {
    if (t.kind == kind) n += t.count;
  }
  return n;
}

double Floorplan3D::hpwl() const {
  double total = 0.0;
  for (const Net& net : nets_) {
    if (net.pins.size() < 2) continue;
    double x0 = 0.0, x1 = 0.0, y0 = 0.0, y1 = 0.0;
    bool first = true;
    for (const NetPin& pin : net.pins) {
      Point p;
      if (pin.is_terminal()) {
        p = terminals_.at(pin.terminal).position;
      } else {
        p = modules_.at(pin.module).shape.center();
      }
      if (first) {
        x0 = x1 = p.x;
        y0 = y1 = p.y;
        first = false;
      } else {
        x0 = std::min(x0, p.x);
        x1 = std::max(x1, p.x);
        y0 = std::min(y0, p.y);
        y1 = std::max(y1, p.y);
      }
    }
    total += net.weight * ((x1 - x0) + (y1 - y0));
  }
  return total;
}

LegalityReport Floorplan3D::check_legality() const {
  LegalityReport report;
  const Rect bounds = outline();
  // Outline containment.
  for (const Module& m : modules_) {
    if (!bounds.contains(m.shape)) {
      report.legal = false;
      ++report.outline_violations;
      report.outline_excess_um2 +=
          m.shape.area() - overlap_area(m.shape, bounds);
      std::ostringstream oss;
      oss << "module " << m.name << " leaves the outline on die " << m.die;
      report.violations.push_back(oss.str());
    }
  }
  // Pairwise overlaps, per die.
  for (std::size_t d = 0; d < tech_.num_dies; ++d) {
    const auto on_die = modules_on_die(d);
    for (std::size_t a = 0; a < on_die.size(); ++a) {
      for (std::size_t b = a + 1; b < on_die.size(); ++b) {
        const Module& ma = modules_[on_die[a]];
        const Module& mb = modules_[on_die[b]];
        const double ov = overlap_area(ma.shape, mb.shape);
        if (ov > 0.0) {
          report.legal = false;
          ++report.overlap_count;
          report.overlap_area_um2 += ov;
          std::ostringstream oss;
          oss << "modules " << ma.name << " and " << mb.name
              << " overlap on die " << d << " by " << ov << " um^2";
          report.violations.push_back(oss.str());
        }
      }
    }
  }
  return report;
}

}  // namespace tsc3d
