// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Export of Grid2D maps for plotting: CSV (one row per grid row) and PGM
// (portable graymap, viewable everywhere) -- used by the bench harness to
// emit the power/thermal map panels of Figs. 2 and 4.
#pragma once

#include <filesystem>

#include "core/grid.hpp"

namespace tsc3d {

/// Write `map` as comma-separated values, row iy per line, iy ascending.
void write_csv(const GridD& map, const std::filesystem::path& path);

/// Write `map` as an 8-bit PGM image, normalized to [min, max].  The
/// y-axis is flipped so the origin is bottom-left, as in the paper's
/// figures.
void write_pgm(const GridD& map, const std::filesystem::path& path);

/// Read back a CSV map (for tests / external data).
[[nodiscard]] GridD read_csv(const std::filesystem::path& path);

}  // namespace tsc3d
