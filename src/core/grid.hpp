// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Grid2D<T>: a dense row-major 2D grid used for power maps, thermal maps,
// correlation maps, and TSV-density maps.  The paper organizes power and
// thermal values "in grids with same dimensions for both power and thermal
// maps" (Sec. 4.1); Grid2D is that shared container.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace tsc3d {

template <typename T>
class Grid2D {
 public:
  Grid2D() = default;

  /// Construct an nx-by-ny grid filled with `init`.
  Grid2D(std::size_t nx, std::size_t ny, T init = T{})
      : nx_(nx), ny_(ny), data_(nx * ny, init) {
    if (nx == 0 || ny == 0)
      throw std::invalid_argument("Grid2D: dimensions must be positive");
  }

  [[nodiscard]] std::size_t nx() const { return nx_; }
  [[nodiscard]] std::size_t ny() const { return ny_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] T& at(std::size_t ix, std::size_t iy) {
    assert(ix < nx_ && iy < ny_);
    return data_[iy * nx_ + ix];
  }
  [[nodiscard]] const T& at(std::size_t ix, std::size_t iy) const {
    assert(ix < nx_ && iy < ny_);
    return data_[iy * nx_ + ix];
  }

  /// Flat access in row-major order (ix fastest).
  [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }

  [[nodiscard]] std::vector<T>& data() { return data_; }
  [[nodiscard]] const std::vector<T>& data() const { return data_; }

  [[nodiscard]] auto begin() { return data_.begin(); }
  [[nodiscard]] auto end() { return data_.end(); }
  [[nodiscard]] auto begin() const { return data_.begin(); }
  [[nodiscard]] auto end() const { return data_.end(); }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  [[nodiscard]] T min() const {
    return *std::min_element(data_.begin(), data_.end());
  }
  [[nodiscard]] T max() const {
    return *std::max_element(data_.begin(), data_.end());
  }
  [[nodiscard]] double sum() const {
    return std::accumulate(data_.begin(), data_.end(), 0.0);
  }
  [[nodiscard]] double mean() const {
    return data_.empty() ? 0.0 : sum() / static_cast<double>(data_.size());
  }

  /// Element-wise addition; grids must have identical dimensions.
  Grid2D& operator+=(const Grid2D& other) {
    check_same_dims(other);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
    return *this;
  }

  /// Element-wise subtraction; grids must have identical dimensions.
  Grid2D& operator-=(const Grid2D& other) {
    check_same_dims(other);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
    return *this;
  }

  /// Scale all elements by a constant.
  Grid2D& operator*=(T scale) {
    for (auto& v : data_) v *= scale;
    return *this;
  }

  friend bool operator==(const Grid2D& a, const Grid2D& b) {
    return a.nx_ == b.nx_ && a.ny_ == b.ny_ && a.data_ == b.data_;
  }

 private:
  void check_same_dims(const Grid2D& other) const {
    if (nx_ != other.nx_ || ny_ != other.ny_)
      throw std::invalid_argument("Grid2D: dimension mismatch");
  }

  std::size_t nx_ = 0;
  std::size_t ny_ = 0;
  std::vector<T> data_;
};

using GridD = Grid2D<double>;

/// Bilinear resampling of `src` onto a grid of dimensions nx-by-ny.
/// Used to bring sensor readings / coarse solver output onto the common
/// power-map grid before correlation analysis.
inline GridD resample(const GridD& src, std::size_t nx, std::size_t ny) {
  GridD dst(nx, ny);
  const auto sx = static_cast<double>(src.nx());
  const auto sy = static_cast<double>(src.ny());
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      // Map destination bin center into source bin coordinates.
      const double fx =
          (static_cast<double>(ix) + 0.5) / static_cast<double>(nx) * sx - 0.5;
      const double fy =
          (static_cast<double>(iy) + 0.5) / static_cast<double>(ny) * sy - 0.5;
      const double cx = std::clamp(fx, 0.0, sx - 1.0);
      const double cy = std::clamp(fy, 0.0, sy - 1.0);
      const auto x0 = static_cast<std::size_t>(cx);
      const auto y0 = static_cast<std::size_t>(cy);
      const std::size_t x1 = std::min(x0 + 1, src.nx() - 1);
      const std::size_t y1 = std::min(y0 + 1, src.ny() - 1);
      const double tx = cx - static_cast<double>(x0);
      const double ty = cy - static_cast<double>(y0);
      const double v0 = src.at(x0, y0) * (1.0 - tx) + src.at(x1, y0) * tx;
      const double v1 = src.at(x0, y1) * (1.0 - tx) + src.at(x1, y1) * tx;
      dst.at(ix, iy) = v0 * (1.0 - ty) + v1 * ty;
    }
  }
  return dst;
}

}  // namespace tsc3d
