// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Deterministic random-number generation.  All stochastic components
// (benchmark synthesis, simulated annealing, Gaussian activity sampling,
// sensor noise) draw from an explicitly seeded Rng so every experiment in
// the paper reproduction is bit-reproducible.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

// <version> is what reliably defines __cpp_lib_math_constants; probe for
// it first so the C++20 branch below is reachable on every toolchain.
#if defined(__has_include)
#if __has_include(<version>)
#include <version>
#endif
#endif
#if defined(__cpp_lib_math_constants)
#include <numbers>
#endif

namespace tsc3d {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, and tiny.
/// Seeded through SplitMix64 so that nearby seeds yield uncorrelated
/// streams.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Complete stream position: the 256-bit xoshiro state plus the
  /// Box-Muller gaussian cache.  Capturing and later restoring a State
  /// resumes the stream bitwise -- including a pending cached gaussian,
  /// which a bare reseed() would drop.
  struct State {
    std::uint64_t s[4] = {};
    double cached_gaussian = 0.0;
    bool has_cached_gaussian = false;

    [[nodiscard]] bool operator==(const State&) const = default;
  };

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    std::uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t t = z;
      t = (t ^ (t >> 30)) * 0xbf58476d1ce4e5b9ULL;
      t = (t ^ (t >> 27)) * 0x94d049bb133111ebULL;
      s = t ^ (t >> 31);
    }
    has_cached_gaussian_ = false;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).  n must be positive.
  std::size_t index(std::size_t n) {
    if (n == 0) throw std::invalid_argument("Rng::index: n must be > 0");
    return static_cast<std::size_t>(uniform() * static_cast<double>(n));
  }

  /// Uniform integer in [lo, hi] inclusive.
  int range(int lo, int hi) {
    return lo + static_cast<int>(index(static_cast<std::size_t>(hi - lo + 1)));
  }

  /// True with probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Box-Muller (cached pair).
  double gaussian() {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    // std::numbers::pi needs C++20; keep a literal fallback so the header
    // still compiles (with identical results) on pre-C++20 toolchains.
#if defined(__cpp_lib_math_constants)
    constexpr double kPi = std::numbers::pi;
#else
    constexpr double kPi = 3.141592653589793238462643383279502884;
#endif
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * kPi * u2;
    cached_gaussian_ = r * std::sin(theta);
    has_cached_gaussian_ = true;
    return r * std::cos(theta);
  }

  /// Normal with given mean and standard deviation.
  double gaussian(double mean, double stddev) {
    return mean + stddev * gaussian();
  }

  /// Log-normal sample parameterized by the underlying normal's mu/sigma.
  double lognormal(double mu, double sigma) {
    return std::exp(gaussian(mu, sigma));
  }

  /// Snapshot the exact stream position (see State).
  [[nodiscard]] State state() const {
    State st;
    for (int i = 0; i < 4; ++i) st.s[i] = state_[i];
    st.cached_gaussian = cached_gaussian_;
    st.has_cached_gaussian = has_cached_gaussian_;
    return st;
  }

  /// Resume from a snapshot; subsequent draws continue the stream bitwise.
  void set_state(const State& st) {
    for (int i = 0; i < 4; ++i) state_[i] = st.s[i];
    cached_gaussian_ = st.cached_gaussian;
    has_cached_gaussian_ = st.has_cached_gaussian;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace tsc3d
