// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Basic planar geometry: points and axis-aligned rectangles.
// All dimensions are in micrometers (um) unless stated otherwise.
#pragma once

#include <algorithm>
#include <cmath>
#include <ostream>

namespace tsc3d {

/// A point in the plane, in micrometers.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Euclidean distance between two points.
inline double euclidean(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

/// Manhattan (L1) distance between two points; the metric used for
/// wirelength estimation and for the spatial-entropy class distances.
inline double manhattan(const Point& a, const Point& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// An axis-aligned rectangle given by its lower-left corner and extent.
/// Degenerate rectangles (zero width or height) are permitted and have
/// zero area; negative extents are invalid.
struct Rect {
  double x = 0.0;  ///< lower-left x [um]
  double y = 0.0;  ///< lower-left y [um]
  double w = 0.0;  ///< width [um]
  double h = 0.0;  ///< height [um]

  [[nodiscard]] double area() const { return w * h; }
  [[nodiscard]] double right() const { return x + w; }
  [[nodiscard]] double top() const { return y + h; }
  [[nodiscard]] Point center() const { return {x + w / 2.0, y + h / 2.0}; }
  [[nodiscard]] double aspect_ratio() const { return h > 0.0 ? w / h : 0.0; }

  /// True if the point lies within the closed rectangle.
  [[nodiscard]] bool contains(const Point& p) const {
    return p.x >= x && p.x <= right() && p.y >= y && p.y <= top();
  }

  /// True if `other` lies entirely within this rectangle.
  [[nodiscard]] bool contains(const Rect& other) const {
    return other.x >= x && other.y >= y && other.right() <= right() &&
           other.top() <= top();
  }

  /// True if the open interiors of the rectangles intersect.  Rectangles
  /// that merely share an edge do NOT overlap, so abutting floorplan
  /// modules are legal.
  [[nodiscard]] bool overlaps(const Rect& other) const {
    return x < other.right() && other.x < right() && y < other.top() &&
           other.y < top();
  }

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.x == b.x && a.y == b.y && a.w == b.w && a.h == b.h;
  }
};

/// Intersection of two rectangles; empty (zero-extent) if they do not
/// overlap.
inline Rect intersection(const Rect& a, const Rect& b) {
  const double x0 = std::max(a.x, b.x);
  const double y0 = std::max(a.y, b.y);
  const double x1 = std::min(a.right(), b.right());
  const double y1 = std::min(a.top(), b.top());
  if (x1 <= x0 || y1 <= y0) return Rect{x0, y0, 0.0, 0.0};
  return Rect{x0, y0, x1 - x0, y1 - y0};
}

/// Area of the overlap of two rectangles (zero if disjoint).
inline double overlap_area(const Rect& a, const Rect& b) {
  return intersection(a, b).area();
}

/// Smallest rectangle enclosing both arguments.
inline Rect bounding_box(const Rect& a, const Rect& b) {
  const double x0 = std::min(a.x, b.x);
  const double y0 = std::min(a.y, b.y);
  const double x1 = std::max(a.right(), b.right());
  const double y1 = std::max(a.top(), b.top());
  return Rect{x0, y0, x1 - x0, y1 - y0};
}

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << '(' << p.x << ", " << p.y << ')';
}

inline std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << '[' << r.x << ", " << r.y << "; " << r.w << " x " << r.h << ']';
}

}  // namespace tsc3d
