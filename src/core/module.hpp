// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Floorplan entities: modules ("black box" IP blocks with only basic
// properties exposed, cf. Sec. 2.2), nets, terminals, and TSVs.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "geometry.hpp"

namespace tsc3d {

using ModuleId = std::size_t;
using NetId = std::size_t;
constexpr std::size_t kInvalidIndex = std::numeric_limits<std::size_t>::max();

/// A floorplan module.  Chip designers typically reuse black-box IP with
/// access to only area, pins and power (Sec. 2.2); this struct is exactly
/// that interface, plus the placement state owned by the floorplanner.
struct Module {
  ModuleId id = 0;
  std::string name;

  // --- intrinsic properties (the "datasheet") ---------------------------
  double area_um2 = 0.0;        ///< target area [um^2]
  bool soft = true;             ///< soft modules may change aspect ratio
  double min_aspect = 1.0 / 3.0;///< min w/h for soft modules
  double max_aspect = 3.0;      ///< max w/h for soft modules
  double power_w = 0.0;         ///< nominal power at 1.0 V [W]
  double intrinsic_delay_ns = 0.0;  ///< internal delay at 1.0 V [ns]

  // --- placement state ---------------------------------------------------
  std::size_t die = 0;          ///< die index, 0 = bottom (away from sink)
  Rect shape;                   ///< placed rectangle on that die [um]
  std::size_t voltage_index = 1;///< index into TechnologyConfig::voltages

  /// Nominal power density [W/um^2] over the placed shape.
  [[nodiscard]] double power_density() const {
    const double a = shape.area();
    return a > 0.0 ? power_w / a : 0.0;
  }
};

/// A terminal (primary I/O) pinned to the chip boundary of a given die.
struct Terminal {
  std::string name;
  std::size_t die = 0;
  Point position;  ///< location on the outline [um]
};

/// One pin of a net: either a module pin (offset relative to the module
/// center is abstracted away at block level) or a terminal reference.
struct NetPin {
  std::size_t module = kInvalidIndex;    ///< index into Floorplan3D::modules
  std::size_t terminal = kInvalidIndex;  ///< index into Floorplan3D::terminals
  [[nodiscard]] bool is_terminal() const { return terminal != kInvalidIndex; }
};

/// A multi-pin net.  Nets whose pins span both dies require signal TSVs.
struct Net {
  NetId id = 0;
  std::vector<NetPin> pins;
  double weight = 1.0;
};

/// Kind of through-silicon via.
enum class TsvKind {
  signal,  ///< carries a 3D net; placed by the TSV planner
  dummy,   ///< thermal-only; inserted by leakage post-processing
};

/// One TSV (or one island of `count` TSVs packed at minimal pitch around
/// the given center).  TSVs live in the bond layer between die 0 and die 1
/// and traverse the upper die's bulk silicon.
struct Tsv {
  Point position;          ///< island center [um]
  std::size_t count = 1;   ///< number of TSVs in this island
  TsvKind kind = TsvKind::signal;
  NetId net = 0;           ///< owning net (signal TSVs only)
};

}  // namespace tsc3d
