#include "core/map_io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace tsc3d {

void write_csv(const GridD& map, const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out)
    throw std::runtime_error("write_csv: cannot open " + path.string());
  for (std::size_t iy = 0; iy < map.ny(); ++iy) {
    for (std::size_t ix = 0; ix < map.nx(); ++ix) {
      out << map.at(ix, iy);
      if (ix + 1 < map.nx()) out << ',';
    }
    out << '\n';
  }
}

void write_pgm(const GridD& map, const std::filesystem::path& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out)
    throw std::runtime_error("write_pgm: cannot open " + path.string());
  const double lo = map.min();
  const double hi = map.max();
  const double span = hi > lo ? hi - lo : 1.0;
  out << "P5\n" << map.nx() << ' ' << map.ny() << "\n255\n";
  for (std::size_t row = map.ny(); row > 0; --row) {
    for (std::size_t ix = 0; ix < map.nx(); ++ix) {
      const double v = (map.at(ix, row - 1) - lo) / span;
      out.put(static_cast<char>(
          static_cast<unsigned char>(std::clamp(v, 0.0, 1.0) * 255.0)));
    }
  }
}

GridD read_csv(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("read_csv: cannot open " + path.string());
  std::vector<std::vector<double>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<double> row;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) row.push_back(std::stod(cell));
    rows.push_back(std::move(row));
  }
  if (rows.empty() || rows.front().empty())
    throw std::runtime_error("read_csv: empty map in " + path.string());
  GridD map(rows.front().size(), rows.size());
  for (std::size_t iy = 0; iy < rows.size(); ++iy) {
    if (rows[iy].size() != map.nx())
      throw std::runtime_error("read_csv: ragged rows in " + path.string());
    for (std::size_t ix = 0; ix < map.nx(); ++ix)
      map.at(ix, iy) = rows[iy][ix];
  }
  return map;
}

}  // namespace tsc3d
