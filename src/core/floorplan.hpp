// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Floorplan3D: the central design database.  It owns the modules, nets,
// terminals and TSVs of a two-die (face-to-back) 3D IC and provides the
// derived quantities every other subsystem consumes: rasterized power
// maps, TSV-density maps, wirelength, utilization, and legality checks.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "config.hpp"
#include "grid.hpp"
#include "module.hpp"

namespace tsc3d {

/// Result of a legality check; empty `violations` means legal.
struct LegalityReport {
  bool legal = true;
  std::size_t overlap_count = 0;       ///< pairs of overlapping modules
  double overlap_area_um2 = 0.0;       ///< total pairwise overlap area
  std::size_t outline_violations = 0;  ///< modules leaving the fixed outline
  double outline_excess_um2 = 0.0;     ///< area outside the outline
  std::vector<std::string> violations; ///< human-readable details
};

/// The design database for one 3D IC.
class Floorplan3D {
 public:
  Floorplan3D() = default;
  explicit Floorplan3D(TechnologyConfig tech) : tech_(std::move(tech)) {
    tech_.validate();
  }

  [[nodiscard]] const TechnologyConfig& tech() const { return tech_; }
  [[nodiscard]] TechnologyConfig& tech() { return tech_; }

  [[nodiscard]] std::vector<Module>& modules() { return modules_; }
  [[nodiscard]] const std::vector<Module>& modules() const { return modules_; }
  [[nodiscard]] std::vector<Net>& nets() { return nets_; }
  [[nodiscard]] const std::vector<Net>& nets() const { return nets_; }
  [[nodiscard]] std::vector<Terminal>& terminals() { return terminals_; }
  [[nodiscard]] const std::vector<Terminal>& terminals() const {
    return terminals_;
  }
  [[nodiscard]] std::vector<Tsv>& tsvs() { return tsvs_; }
  [[nodiscard]] const std::vector<Tsv>& tsvs() const { return tsvs_; }

  /// Fixed die outline (same for every die in the stack).
  [[nodiscard]] Rect outline() const {
    return Rect{0.0, 0.0, tech_.die_width_um, tech_.die_height_um};
  }

  /// Indices of the modules placed on die `d`.
  [[nodiscard]] std::vector<std::size_t> modules_on_die(std::size_t d) const;

  /// Power of module `i` scaled by its assigned voltage level [W].
  [[nodiscard]] double effective_power(std::size_t i) const;

  /// Total effective power over all modules [W].
  [[nodiscard]] double total_power() const;

  /// Sum of module areas on die `d` divided by the outline area.
  [[nodiscard]] double utilization(std::size_t d) const;

  /// Rasterize the power map of die `d` onto an nx-by-ny grid.  Each bin
  /// receives module power proportional to the overlap area, i.e. the map
  /// integrates to the die's total power [W].  If `module_power_w` is
  /// provided it supplies per-module absolute power values (e.g. one
  /// Gaussian activity sample); otherwise effective_power() is used.
  [[nodiscard]] GridD power_map(
      std::size_t d, std::size_t nx, std::size_t ny,
      const std::vector<double>* module_power_w = nullptr) const;

  /// Power density map [W/um^2] -- the paper reports power maps in
  /// 1e-2 uW/um^2; this is the same map in coherent units.
  [[nodiscard]] GridD power_density_map(std::size_t d, std::size_t nx,
                                        std::size_t ny) const;

  /// Fraction of each bin's area covered by TSV cells (body + keep-out),
  /// clamped to [0,1].  Islands of `count` TSVs occupy a square of
  /// count * cell_area around the island center.
  [[nodiscard]] GridD tsv_density_map(std::size_t nx, std::size_t ny,
                                      bool include_dummy = true) const;

  /// Total number of TSVs of the given kind (islands weighted by count).
  [[nodiscard]] std::size_t tsv_count(TsvKind kind) const;

  /// Half-perimeter wirelength over all nets [um].  Pins on different dies
  /// contribute no extra planar length here (the vertical hop is one TSV);
  /// the bounding box spans the projected positions of all pins.
  [[nodiscard]] double hpwl() const;

  /// Bounding-box footprint of a TSV island placed at `t.position`.
  [[nodiscard]] Rect tsv_island_rect(const Tsv& t) const;

  /// Check module overlaps and fixed-outline containment on every die.
  [[nodiscard]] LegalityReport check_legality() const;

 private:
  TechnologyConfig tech_;
  std::vector<Module> modules_;
  std::vector<Net> nets_;
  std::vector<Terminal> terminals_;
  std::vector<Tsv> tsvs_;
};

}  // namespace tsc3d
