// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Floorplan3D: the central design database.  It owns the modules, nets,
// terminals and TSVs of a two-die (face-to-back) 3D IC and provides the
// derived quantities every other subsystem consumes: rasterized power
// maps, TSV-density maps, wirelength, utilization, and legality checks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "config.hpp"
#include "grid.hpp"
#include "module.hpp"

namespace tsc3d {

/// Result of a legality check; empty `violations` means legal.
struct LegalityReport {
  bool legal = true;
  std::size_t overlap_count = 0;       ///< pairs of overlapping modules
  double overlap_area_um2 = 0.0;       ///< total pairwise overlap area
  std::size_t outline_violations = 0;  ///< modules leaving the fixed outline
  double outline_excess_um2 = 0.0;     ///< area outside the outline
  std::vector<std::string> violations; ///< human-readable details
};

/// The design database for one 3D IC.
class Floorplan3D {
 public:
  Floorplan3D() = default;
  explicit Floorplan3D(TechnologyConfig tech) : tech_(std::move(tech)) {
    tech_.validate();
  }

  [[nodiscard]] const TechnologyConfig& tech() const { return tech_; }
  [[nodiscard]] TechnologyConfig& tech() { return tech_; }

  [[nodiscard]] std::vector<Module>& modules() { return modules_; }
  [[nodiscard]] const std::vector<Module>& modules() const { return modules_; }
  [[nodiscard]] std::vector<Net>& nets() { return nets_; }
  [[nodiscard]] const std::vector<Net>& nets() const { return nets_; }
  [[nodiscard]] std::vector<Terminal>& terminals() { return terminals_; }
  [[nodiscard]] const std::vector<Terminal>& terminals() const {
    return terminals_;
  }
  [[nodiscard]] std::vector<Tsv>& tsvs() { return tsvs_; }
  [[nodiscard]] const std::vector<Tsv>& tsvs() const { return tsvs_; }

  /// Fixed die outline (same for every die in the stack).
  [[nodiscard]] Rect outline() const {
    return Rect{0.0, 0.0, tech_.die_width_um, tech_.die_height_um};
  }

  /// Indices of the modules placed on die `d`.
  [[nodiscard]] std::vector<std::size_t> modules_on_die(std::size_t d) const;

  /// Power of module `i` scaled by its assigned voltage level [W].
  [[nodiscard]] double effective_power(std::size_t i) const;

  /// Total effective power over all modules [W].
  [[nodiscard]] double total_power() const;

  /// Sum of module areas on die `d` divided by the outline area.
  [[nodiscard]] double utilization(std::size_t d) const;

  /// Rasterize the power map of die `d` onto an nx-by-ny grid.  Each bin
  /// receives module power proportional to the overlap area, i.e. the map
  /// integrates to the die's total power [W].  If `module_power_w` is
  /// provided it supplies per-module absolute power values (e.g. one
  /// Gaussian activity sample); otherwise effective_power() is used.
  [[nodiscard]] GridD power_map(
      std::size_t d, std::size_t nx, std::size_t ny,
      const std::vector<double>* module_power_w = nullptr) const;

  /// Power density map [W/um^2] -- the paper reports power maps in
  /// 1e-2 uW/um^2; this is the same map in coherent units.
  [[nodiscard]] GridD power_density_map(std::size_t d, std::size_t nx,
                                        std::size_t ny) const;

  /// Fraction of each bin's area covered by TSV cells (body + keep-out),
  /// clamped to [0,1].  Islands of `count` TSVs occupy a square of
  /// count * cell_area around the island center.
  [[nodiscard]] GridD tsv_density_map(std::size_t nx, std::size_t ny,
                                      bool include_dummy = true) const;

  /// Total number of TSVs of the given kind (islands weighted by count).
  [[nodiscard]] std::size_t tsv_count(TsvKind kind) const;

  /// Half-perimeter wirelength over all nets [um].  Pins on different dies
  /// contribute no extra planar length here (the vertical hop is one TSV);
  /// the bounding box spans the projected positions of all pins.
  [[nodiscard]] double hpwl() const;

  /// Weighted HPWL of one net (the per-net contribution hpwl() sums).
  [[nodiscard]] double net_hpwl(const Net& net) const;

  /// Unweighted half-perimeter of the net's pin bounding box [um]: the
  /// scan net_hpwl() weights, shared so other per-net consumers (the
  /// Elmore timing engine's wire-length estimate) run the IDENTICAL
  /// arithmetic and can reuse cached values bitwise.
  [[nodiscard]] double net_box_len(const Net& net) const;

  // --- incremental layout tracking ---------------------------------------
  // The annealing hot path rewrites only the modules of dies a move
  // perturbed (LayoutState::apply_to) and reports every rewritten module
  // through note_module_moved().  The database turns those notes into
  // per-net dirty epochs (via a module -> nets incidence index) and
  // per-die bounding-box invalidations, so consumers can recompute only
  // what a move touched:
  //
  //  * hpwl_cached() recomputes dirty nets' boxes with the same
  //    arithmetic as hpwl() and re-sums the per-net array in canonical
  //    net order -- bitwise-equal to a full recompute by construction;
  //  * die_bounds() serves the packing-fed (or scanned) per-die bbox for
  //    the outline/area terms;
  //  * net_epoch()/layout_epoch() let external per-net caches (the Elmore
  //    timing engine) key their own entries.
  //
  // Invariant: between apply_to()-driven rewrites the net topology and
  // module positions are not mutated behind the database's back.  Code
  // that moves modules directly must call note_module_moved() per module
  // (or invalidate_layout_caches() wholesale); CostEvaluator's debug
  // cross-check (floorplanning.cross_check_interval) guards the invariant
  // in the annealing loop.

  /// Record that module `i`'s position/shape/die was (re)written: bumps
  /// the epoch of every incident net and invalidates the die bbox cache
  /// of the module's current die.  `die_changed == false` promises the
  /// module stayed on its die (an intra-die reposition/resize), letting
  /// per-net die-span caches survive; when unsure, keep the default.
  void note_module_moved(std::size_t i, bool die_changed = true);

  /// Nets with at least one pin on module `i` (lazily built incidence).
  [[nodiscard]] const std::vector<std::size_t>& nets_of_module(
      std::size_t i) const;

  /// Monotone per-net dirty epoch (starts at 1; 0 never occurs, so 0 is a
  /// safe "never seen" sentinel for external caches).
  [[nodiscard]] std::uint64_t net_epoch(std::size_t n) const;

  /// Like net_epoch, but advanced only when an incident module changed
  /// DIE (not merely position/shape): while it holds still, the set of
  /// dies a net spans is unchanged, so per-net TSV-hop/span caches stay
  /// exact.  Same >= 1 / 0-sentinel convention as net_epoch.
  [[nodiscard]] std::uint64_t net_die_epoch(std::size_t n) const;

  /// Bulk views of the per-net epoch arrays (indexed by net, same values
  /// as net_epoch()/net_die_epoch()): lets per-net cache sweeps hoist the
  /// lazy-index check out of their loop.  Invalidated by the same events
  /// that grow/shrink the net list.
  [[nodiscard]] const std::vector<std::uint64_t>& net_epochs() const;
  [[nodiscard]] const std::vector<std::uint64_t>& net_die_epochs() const;

  /// Monotone global layout epoch: bumped by every note_module_moved()
  /// and by invalidate_layout_caches().
  [[nodiscard]] std::uint64_t layout_epoch() const { return layout_epoch_; }

  /// Incrementally maintained hpwl(): recomputes only nets whose epoch
  /// advanced since the last call, then re-sums per-net values in net
  /// order.  Bitwise-equal to hpwl() as long as the tracking invariant
  /// above holds.
  [[nodiscard]] double hpwl_cached();

  /// Serve net `n`'s cached unweighted box length if it is current (its
  /// cache entry was computed at the net's present epoch).  Returns false
  /// when stale or never computed -- the caller recomputes via
  /// net_box_len(), which yields the identical bits.  hpwl_cached() fills
  /// this cache as it recomputes dirty nets, so evaluation pipelines that
  /// run the HPWL term first get every dirty net's length for free.
  [[nodiscard]] bool net_length_cached(std::size_t n, double& len_um) const;

  /// Bounding-box extent (max right / max top over modules) of die `d`.
  /// Served from the cache when valid (fed by LayoutState::apply_to with
  /// the packing result, or by a previous scan), recomputed by scanning
  /// the modules otherwise -- both produce the identical max.
  struct DieBounds {
    double width = 0.0;
    double height = 0.0;
  };
  [[nodiscard]] DieBounds die_bounds(std::size_t d) const;

  /// Install die `d`'s bbox (the packer's bounding box equals the module
  /// scan bitwise: same set of right/top values, max is order-free).
  void set_die_bounds(std::size_t d, double width, double height);

  /// Per-die stamp of the last LayoutState write (see
  /// LayoutState::apply_to): a (family, version) pair uniquely
  /// identifying the die content some layout state wrote.  family == 0
  /// never matches.
  [[nodiscard]] bool layout_stamp_matches(std::size_t d, std::uint64_t family,
                                          std::uint64_t version) const;
  void set_layout_stamp(std::size_t d, std::uint64_t family,
                        std::uint64_t version);

  /// Drop every incremental cache: incidence index, net epochs (all nets
  /// dirty), die bounds, and layout stamps.  Call after mutating nets,
  /// terminals, or module placements outside apply_to()/
  /// note_module_moved().  Illegal while a trial is open.
  void invalidate_layout_caches();

  // --- trial (speculative) layout mutation --------------------------------
  // A trial brackets one speculative move: between begin_trial() and
  // commit_trial()/rollback_trial(), every mutation of module placements
  // and of the incremental caches above journals its pre-trial value on
  // first touch.  commit_trial() drops the journal (the mutations stand);
  // rollback_trial() restores every journaled module shape/die, net
  // epoch, per-net HPWL cache entry, die bbox, and layout stamp to its
  // pre-trial bits -- so a rejected move leaves the database exactly as
  // if it never happened, including the stamps that let the next
  // LayoutState::apply_to skip the dies entirely.  The global
  // layout_epoch_ is deliberately NOT rolled back: it stays monotone, so
  // epochs minted inside an abandoned trial can never collide with
  // later ones.  Trials do not nest.

  /// Open a trial.  Builds the incidence index and die caches up front so
  /// no lazy rebuild (which resets every net epoch) can fire mid-trial.
  void begin_trial();
  /// Keep every mutation since begin_trial(); drops the journal.
  void commit_trial();
  /// Undo every journaled mutation since begin_trial(), bitwise.
  void rollback_trial();
  [[nodiscard]] bool in_trial() const { return trial_active_; }

  /// Journal module `i`'s shape and die before an in-trial write.  Called
  /// by LayoutState::apply_to ahead of each module it rewrites; no-op
  /// outside a trial or on a module already journaled this trial.
  void trial_save_module(std::size_t i);

  /// Bounding-box footprint of a TSV island placed at `t.position`.
  [[nodiscard]] Rect tsv_island_rect(const Tsv& t) const;

  /// Check module overlaps and fixed-outline containment on every die.
  [[nodiscard]] LegalityReport check_legality() const;

 private:
  void ensure_net_index() const;
  void ensure_die_caches() const;

  TechnologyConfig tech_;
  std::vector<Module> modules_;
  std::vector<Net> nets_;
  std::vector<Terminal> terminals_;
  std::vector<Tsv> tsvs_;

  // --- incremental layout caches (see "incremental layout tracking") ----
  // All mutable: they are derived data, maintained lazily behind const
  // accessors.  Copying the database copies them (they stay coherent with
  // the copied modules/nets).
  mutable std::vector<std::vector<std::size_t>> nets_of_module_;
  mutable bool net_index_ready_ = false;
  mutable std::vector<std::uint64_t> net_epoch_;     ///< per net, >= 1
  mutable std::vector<std::uint64_t> net_die_epoch_; ///< per net, >= 1
  mutable std::uint64_t layout_epoch_ = 1;
  std::vector<double> net_hpwl_cache_;               ///< weighted per-net hpwl
  std::vector<double> net_len_cache_;                ///< unweighted box length
  std::vector<std::uint64_t> net_hpwl_epoch_;        ///< epoch at compute, 0 = never
  struct LayoutStamp {
    std::uint64_t family = 0;  ///< 0 = no layout state wrote this die
    std::uint64_t version = 0;
  };
  mutable std::vector<LayoutStamp> die_stamp_;       ///< per die
  mutable std::vector<DieBounds> die_bounds_;        ///< per die
  mutable std::vector<bool> die_bounds_valid_;

  // --- trial journal (see "trial (speculative) layout mutation") ---------
  // First-touch journaling: mark arrays compare against trial_id_ (bumped
  // per begin_trial, so clearing them is O(1)); each journal entry holds
  // the complete pre-trial state of one module / net cache row / die
  // cache row.  Mutable because const readers (the die_bounds lazy scan)
  // also write cache rows and must journal them.
  struct TrialModule {
    std::size_t i = 0;
    Rect shape;
    std::size_t die = 0;
  };
  struct TrialNet {
    std::size_t n = 0;
    std::uint64_t epoch = 0;
    std::uint64_t die_epoch = 0;
    bool had_hpwl = false;  ///< hpwl cache rows existed at capture time
    std::uint64_t hpwl_epoch = 0;
    double hpwl = 0.0;
    double len = 0.0;
  };
  struct TrialDie {
    std::size_t d = 0;
    DieBounds bounds;
    bool bounds_valid = false;
    LayoutStamp stamp;
  };
  void trial_save_net(std::size_t n) const;
  void trial_save_die(std::size_t d) const;
  bool trial_active_ = false;
  mutable std::uint64_t trial_id_ = 0;
  mutable std::vector<std::uint64_t> trial_mark_module_;
  mutable std::vector<std::uint64_t> trial_mark_net_;
  mutable std::vector<std::uint64_t> trial_mark_die_;
  mutable std::vector<TrialModule> trial_modules_;
  mutable std::vector<TrialNet> trial_nets_;
  mutable std::vector<TrialDie> trial_dies_;
};

}  // namespace tsc3d
