// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Technology and thermal configuration.  Defaults follow the paper's setup:
// a two-die, face-to-back, TSV-based 3D IC (Sec. 2.2 / Fig. 1), heatsink
// atop the stack, a secondary heat path into the package (Sec. 3), and the
// 90 nm voltage/power/delay scaling triple from Sec. 7.
#pragma once

#include <array>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace tsc3d {

/// One selectable supply voltage with its power and delay scaling factors
/// relative to nominal (1.0 V).  Values simulated for the 90 nm node,
/// reproduced verbatim from Sec. 7 of the paper.
struct VoltageLevel {
  double voltage = 1.0;      ///< supply voltage [V]
  double power_scale = 1.0;  ///< dynamic-power multiplier vs 1.0 V
  double delay_scale = 1.0;  ///< module/net delay multiplier vs 1.0 V
};

/// The paper's three voltage options: 0.8 V, 1.0 V, 1.2 V.
inline std::vector<VoltageLevel> default_voltage_levels() {
  return {
      VoltageLevel{0.8, 0.817, 1.56},
      VoltageLevel{1.0, 1.0, 1.0},
      VoltageLevel{1.2, 1.496, 0.83},
  };
}

/// Geometry of a single vertical via (TSV or MIV) and its keep-out zone.
/// Defaults match typical via-middle copper TSVs as assumed by the
/// Corblivar/HotSpot default configurations referenced in Sec. 7; for the
/// monolithic flavor use default_miv_geometry().
struct TsvGeometry {
  double diameter_um = 5.0;       ///< copper body diameter [um]
  double pitch_um = 10.0;         ///< minimal center-to-center pitch [um]
  double keepout_um = 5.0;        ///< keep-out ring around the body [um]
  double liner_thickness_um = 0.2;///< dielectric liner [um]

  /// Footprint edge length of one TSV cell incl. keep-out [um].
  [[nodiscard]] double cell_edge_um() const {
    return diameter_um + 2.0 * keepout_um;
  }
  /// Area occupied by one TSV cell incl. keep-out [um^2].
  [[nodiscard]] double cell_area_um2() const {
    const double e = cell_edge_um();
    return e * e;
  }
};

/// Monolithic inter-tier via (MIV) geometry: nanoscale vias at sub-micron
/// pitch.  Their copper cross-section is ~3 orders of magnitude smaller
/// than a TSV's, so MIVs barely act as "heat pipes" -- which is exactly
/// why the paper's TSV-arrangement lever weakens under this flavor.
inline TsvGeometry default_miv_geometry() {
  TsvGeometry miv;
  miv.diameter_um = 0.1;
  miv.pitch_um = 1.0;
  miv.keepout_um = 0.1;
  miv.liner_thickness_um = 0.01;
  return miv;
}

/// 3D integration flavor.  The paper studies TSV-based stacking and names
/// monolithic integration as future work (Sec. 8, footnote 1: "Thermal
/// maps would be considerably different for other 3D integration
/// flavors"); both are supported here.
enum class IntegrationFlavor {
  tsv_based,   ///< thinned dies, bond/BEOL layer, copper TSVs (the paper)
  monolithic,  ///< sequential tiers, thin ILD, nanoscale MIVs
};

/// Chip-stack technology description.  The paper fixes two dies stacked
/// face-to-back; the stack size is kept configurable for the future-work
/// direction (larger stacks) mentioned in Sec. 8.
struct TechnologyConfig {
  IntegrationFlavor flavor = IntegrationFlavor::tsv_based;
  std::size_t num_dies = 2;
  double die_width_um = 4000.0;    ///< fixed-outline width [um]
  double die_height_um = 4000.0;   ///< fixed-outline height [um]
  double die_thickness_um = 100.0; ///< thinned silicon bulk [um] (TSV flavor)
  /// Tier thickness for the monolithic flavor: sequentially processed
  /// silicon is 2-3 orders thinner than a thinned, bonded die.
  double monolithic_tier_thickness_um = 1.0;
  double clock_period_ns = 4.0;    ///< timing budget for voltage assignment
  TsvGeometry tsv;
  std::vector<VoltageLevel> voltages = default_voltage_levels();

  [[nodiscard]] double die_area_um2() const {
    return die_width_um * die_height_um;
  }

  void validate() const {
    if (num_dies < 1)
      throw std::invalid_argument("TechnologyConfig: need at least one die");
    if (die_width_um <= 0.0 || die_height_um <= 0.0)
      throw std::invalid_argument("TechnologyConfig: non-positive outline");
    if (voltages.empty())
      throw std::invalid_argument("TechnologyConfig: no voltage levels");
  }
};

/// Convert a technology to the monolithic flavor: MIV-sized vias and
/// sequential tiers; all other parameters are preserved.
inline TechnologyConfig make_monolithic(TechnologyConfig tech) {
  tech.flavor = IntegrationFlavor::monolithic;
  tech.tsv = default_miv_geometry();
  return tech;
}

/// Steady-state solver backend of the thermal engine.
///
///  * `sor`: warm-started red-black SOR sweeps until the per-sweep update
///    drops below `tolerance_k` -- cheap per iteration, and a handful of
///    sweeps suffice when the previous field seeds the solve (annealing
///    loops).  The cost tail is cold / large-grid solves, whose error
///    modes are smooth and decay slowly under point relaxation.
///  * `multigrid`: geometric V-cycles over a per-assembly hierarchy of
///    2x-coarsened conductance networks (layers are never coarsened),
///    with the same red-black sweep as the smoother on every level.
///    Smooth error that SOR grinds down over hundreds of sweeps is
///    eliminated on the coarse grids, so cold and large solves converge
///    in a few cycles; results agree with SOR to solver accuracy (the
///    same tolerance contract), and sharded sweeps stay bitwise
///    deterministic.  Grids too small or odd-sized to coarsen fall back
///    to SOR.
///  * `auto_select` ("auto" in config files, the default): each engine
///    picks per its role -- the annealer's warm fast-loop engine keeps
///    SOR (warm starts converge in a handful of sweeps; V-cycle coarse
///    traffic would be pure overhead), sampling/verification engines
///    get multigrid (cold and strongly perturbed solves are the smooth-
///    error regime it removes).  Explicit `sor`/`multigrid` force that
///    backend everywhere.
enum class SolverBackend {
  sor,
  multigrid,
  auto_select,
};

/// Material and boundary parameters of the thermal model.  The layer
/// structure mirrors HotSpot's grid model extended for two stacked dies:
/// package resistance below (secondary heat path, Sec. 3), TIM + heat
/// spreader + heatsink above (primary path), and a bond/BEOL layer between
/// the dies whose vertical conductivity is locally raised by TSVs acting
/// as "heat pipes".
struct ThermalConfig {
  // Grid resolution of the thermal solve (per layer).
  std::size_t grid_nx = 64;
  std::size_t grid_ny = 64;

  double ambient_k = 293.15;  ///< ambient temperature [K]

  // Bulk silicon.
  double k_silicon = 150.0;       ///< thermal conductivity [W/(m K)]
  double c_silicon = 1.75e6;      ///< volumetric heat capacity [J/(m^3 K)]

  // Inter-die bond + BEOL layer (SiO2-dominated), TSV flavor.
  double bond_thickness_um = 20.0;
  double k_bond = 1.0;
  double c_bond = 2.0e6;

  // Inter-tier dielectric (ILD), monolithic flavor: far thinner than a
  // bond layer, so tiers couple thermally much more strongly.
  double ild_thickness_um = 0.5;
  double k_ild = 1.4;
  double c_ild = 2.0e6;

  // Copper TSV material (fills a fraction of a bond-layer / bulk cell).
  double k_tsv_copper = 380.0;
  double c_tsv_copper = 3.4e6;

  // Thermal interface material between top die and heat spreader.
  double tim_thickness_um = 50.0;
  double k_tim = 4.0;
  double c_tim = 4.0e6;

  // Heat spreader (copper).
  double spreader_thickness_um = 1000.0;
  double k_spreader = 400.0;
  double c_spreader = 3.4e6;

  // Heatsink base (copper); convection to ambient from its top.
  double sink_thickness_um = 6900.0;
  double k_sink = 400.0;
  double c_sink = 3.4e6;
  double r_convec_k_per_w = 0.25;  ///< lumped convection resistance [K/W]

  // Secondary path: die 1 bulk -> package -> board/ambient, lumped.
  double r_package_k_per_w = 15.0; ///< per-chip secondary-path resistance

  // Solver controls.
  double sor_omega = 1.8;          ///< SOR over-relaxation factor
  double tolerance_k = 1e-4;       ///< max per-node update at convergence [K]
  std::size_t max_iterations = 20000;
  /// Steady-state backend; auto_select resolves per engine role.
  SolverBackend solver = SolverBackend::auto_select;
  /// Multigrid depth: number of coarse levels below the solve grid.
  /// 0 = auto (coarsen 2x in x/y while both extents stay even and >= 4).
  std::size_t mg_levels = 0;
  /// Pre- and post-smoothing red-black sweeps per V-cycle level.
  std::size_t mg_smooth_sweeps = 2;
  /// Seed cold multigrid solves with a full-multigrid (coarse-to-fine)
  /// initial sweep instead of a flat ambient field.
  bool mg_fmg = true;

  void validate() const {
    if (grid_nx < 4 || grid_ny < 4)
      throw std::invalid_argument("ThermalConfig: grid too small");
    if (sor_omega <= 0.0 || sor_omega >= 2.0)
      throw std::invalid_argument("ThermalConfig: SOR omega out of (0,2)");
    if (r_convec_k_per_w <= 0.0 || r_package_k_per_w <= 0.0)
      throw std::invalid_argument("ThermalConfig: non-positive resistance");
    if (mg_smooth_sweeps == 0)
      throw std::invalid_argument(
          "ThermalConfig: multigrid needs at least one smoothing sweep");
  }
};

}  // namespace tsc3d
