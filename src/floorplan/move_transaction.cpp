#include "floorplan/move_transaction.hpp"

#include <stdexcept>

namespace tsc3d::floorplan {

void MoveRecord::revert_slots(LayoutState& s) const {
  switch (kind) {
    case Kind::none:
      break;
    case Kind::swap_pos:
      s.die_sp[die_a].swap_positive(slot_i, slot_j);
      break;
    case Kind::swap_neg:
      s.die_sp[die_a].swap_negative(slot_i, slot_j);
      break;
    case Kind::swap_both:
      s.die_sp[die_a].swap_both(module_a, module_b);
      break;
    case Kind::resize:
      s.width[module_a] = old_w;
      s.height[module_a] = old_h;
      break;
    case Kind::transfer:
      s.die_sp[die_b].remove(module_a);
      s.die_sp[die_a].insert(module_a, old_pos_slot, old_neg_slot);
      s.die_of[module_a] = die_a;
      break;
    case Kind::exchange:
      s.die_sp[die_b].remove(module_a);
      s.die_sp[die_a].remove(module_b);
      s.die_sp[die_a].insert(module_a, old_pos_slot, old_neg_slot);
      s.die_sp[die_b].insert(module_b, old_pos_slot_b, old_neg_slot_b);
      s.die_of[module_a] = die_a;
      s.die_of[module_b] = die_b;
      break;
  }
}

void MoveRecord::revert(LayoutState& s) const {
  // Classic reverts re-dirty the dies they restore: versions never
  // repeat, so the restored content gets a FRESH version (the cached
  // packing goes stale, but stamp equality stays sound -- see the
  // LayoutState doc).
  revert_slots(s);
  switch (kind) {
    case Kind::none:
      break;
    case Kind::swap_pos:
    case Kind::swap_neg:
    case Kind::swap_both:
      s.touch_die(die_a);
      break;
    case Kind::resize:
      s.touch_die(s.die_of[module_a]);
      break;
    case Kind::transfer:
    case Kind::exchange:
      s.touch_die(die_a);
      s.touch_die(die_b);
      break;
  }
}

void MoveRecord::replay(LayoutState& s) const {
  // Mirrors the mutation order of Annealer::random_move exactly so the
  // replayed sequence-pair content is bitwise-identical to the original
  // proposal's.
  switch (kind) {
    case Kind::none:
      break;
    case Kind::swap_pos:
      s.die_sp[die_a].swap_positive(slot_i, slot_j);
      s.touch_die(die_a);
      break;
    case Kind::swap_neg:
      s.die_sp[die_a].swap_negative(slot_i, slot_j);
      s.touch_die(die_a);
      break;
    case Kind::swap_both:
      s.die_sp[die_a].swap_both(module_a, module_b);
      s.touch_die(die_a);
      break;
    case Kind::resize:
      s.width[module_a] = new_w;
      s.height[module_a] = new_h;
      s.touch_die(s.die_of[module_a]);
      break;
    case Kind::transfer:
      s.die_sp[die_a].remove(module_a);
      s.die_sp[die_b].insert(module_a, ins_pos, ins_neg);
      s.die_of[module_a] = die_b;
      s.touch_die(die_a);
      s.touch_die(die_b);
      break;
    case Kind::exchange:
      s.die_sp[die_a].remove(module_a);
      s.die_sp[die_b].remove(module_b);
      s.die_sp[die_b].insert(module_a, ins_pos, ins_neg);
      s.die_sp[die_a].insert(module_b, ins_pos_b, ins_neg_b);
      s.die_of[module_a] = die_b;
      s.die_of[module_b] = die_a;
      s.touch_die(die_a);
      s.touch_die(die_b);
      break;
  }
}

void MoveTransaction::open(LayoutState& state) {
  if (phase_ != Phase::idle)
    throw std::logic_error("MoveTransaction::open: transaction already open");
  state_ = &state;
  base_versions_ = state.die_version;
  phase_ = Phase::open;
}

void MoveTransaction::stage() {
  if (phase_ != Phase::open)
    throw std::logic_error("MoveTransaction::stage: no open transaction");
  // Begin the trial BEFORE publishing the move so every cache write
  // apply_to() triggers lands in the journals.
  eval_.trial_begin();
  state_->apply_to(fp_);
  phase_ = Phase::staged;
}

void MoveTransaction::commit() {
  if (phase_ != Phase::staged)
    throw std::logic_error("MoveTransaction::commit: nothing staged");
  eval_.trial_commit();
  phase_ = Phase::idle;
}

void MoveTransaction::rollback(const MoveRecord& rec) {
  if (phase_ != Phase::staged)
    throw std::logic_error("MoveTransaction::rollback: nothing staged");
  // Restore the state's content WITHOUT fresh versions, then put the
  // pre-move versions back: (family, version) again names exactly the
  // content it named before the move, so the floorplan stamps restored
  // by the trial rollback below match and the next apply_to() skips
  // every die this move touched.  The cached packing minted during
  // stage() keeps the trial's version number, which was consumed and is
  // never reissued -- it reads as stale, never as wrong.
  rec.revert_slots(*state_);
  state_->die_version = base_versions_;
  eval_.trial_rollback();
  phase_ = Phase::idle;
}

void MoveTransaction::abort() {
  if (phase_ != Phase::open)
    throw std::logic_error("MoveTransaction::abort: no open transaction");
  phase_ = Phase::idle;
}

}  // namespace tsc3d::floorplan
