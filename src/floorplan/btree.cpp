#include "floorplan/btree.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace tsc3d::floorplan {

BTree::BTree(std::size_t n) {
  if (n == 0) throw std::invalid_argument("BTree: empty module set");
  nodes_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes_[i].module = i;
    if (i > 0) {
      nodes_[i].parent = i - 1;
      nodes_[i - 1].left = i;
    }
  }
  root_ = 0;
}

BTree::BTree(std::size_t n, Rng& rng) : BTree(n) {
  // Shuffle by applying random moves to the chain.
  for (std::size_t k = 0; k < 4 * n; ++k) move_random(rng);
}

std::vector<PackedBlock> BTree::pack(const std::vector<double>& width,
                                     const std::vector<double>& height,
                                     double& bbox_w, double& bbox_h) const {
  if (width.size() != nodes_.size() || height.size() != nodes_.size())
    throw std::invalid_argument("BTree::pack: extent size mismatch");

  std::vector<PackedBlock> placed(nodes_.size());
  // Horizontal contour: x -> top y over [x, next_x).  Map from interval
  // start to height; query = max height over [x0, x1).
  std::map<double, double> contour;
  contour[0.0] = 0.0;

  const auto contour_max = [&](double x0, double x1) {
    auto it = contour.upper_bound(x0);
    --it;  // segment containing x0
    double top = 0.0;
    for (; it != contour.end() && it->first < x1; ++it)
      top = std::max(top, it->second);
    return top;
  };
  const auto contour_set = [&](double x0, double x1, double top) {
    // Value that resumes after x1 (height of the segment containing x1).
    auto after = contour.upper_bound(x1);
    --after;
    const double resume = after->second;
    // Erase all segment starts in [x0, x1).
    auto it = contour.lower_bound(x0);
    while (it != contour.end() && it->first < x1) it = contour.erase(it);
    contour[x0] = top;
    if (!contour.contains(x1)) contour[x1] = resume;
  };

  bbox_w = 0.0;
  bbox_h = 0.0;
  // DFS from the root; parents always pack before their children.
  std::vector<std::pair<std::size_t, double>> stack;  // node, x position
  stack.push_back({root_, 0.0});
  while (!stack.empty()) {
    const auto [node, x] = stack.back();
    stack.pop_back();
    const Node& nd = nodes_[node];
    const double w = width[nd.module];
    const double h = height[nd.module];
    const double y = contour_max(x, x + w);
    placed[nd.module] = PackedBlock{nd.module, Rect{x, y, w, h}};
    contour_set(x, x + w, y + h);
    bbox_w = std::max(bbox_w, x + w);
    bbox_h = std::max(bbox_h, y + h);
    if (nd.left != kInvalidIndex) stack.push_back({nd.left, x + w});
    if (nd.right != kInvalidIndex) stack.push_back({nd.right, x});
  }
  return placed;
}

void BTree::detach(std::size_t node) {
  Node& nd = nodes_[node];
  // Splice: replace this node by one of its children (prefer left);
  // the displaced other child is re-hung on the promoted subtree's
  // leftmost free slot.
  const std::size_t child =
      nd.left != kInvalidIndex ? nd.left : nd.right;
  const std::size_t other =
      nd.left != kInvalidIndex ? nd.right : kInvalidIndex;

  if (child != kInvalidIndex) nodes_[child].parent = nd.parent;
  if (nd.parent != kInvalidIndex) {
    Node& p = nodes_[nd.parent];
    (p.left == node ? p.left : p.right) = child;
  } else {
    root_ = child;
  }

  if (other != kInvalidIndex) {
    // Hang `other` under the promoted child's leftmost descendant.
    std::size_t host = child;
    while (nodes_[host].left != kInvalidIndex) host = nodes_[host].left;
    nodes_[host].left = other;
    nodes_[other].parent = host;
  }

  nd.parent = nd.left = nd.right = kInvalidIndex;
}

void BTree::attach(std::size_t node, std::size_t parent, bool as_left) {
  Node& p = nodes_[parent];
  std::size_t& slot = as_left ? p.left : p.right;
  if (slot != kInvalidIndex) {
    // Push the existing child down under the inserted node (same side,
    // preserving its relative packing direction).
    (as_left ? nodes_[node].left : nodes_[node].right) = slot;
    nodes_[slot].parent = node;
  }
  slot = node;
  nodes_[node].parent = parent;
}

void BTree::swap_random(Rng& rng) {
  if (nodes_.size() < 2) return;
  const std::size_t a = rng.index(nodes_.size());
  std::size_t b = rng.index(nodes_.size());
  while (b == a) b = rng.index(nodes_.size());
  std::swap(nodes_[a].module, nodes_[b].module);
}

void BTree::move_random(Rng& rng) {
  if (nodes_.size() < 2) return;
  const std::size_t node = rng.index(nodes_.size());
  detach(node);
  if (root_ == kInvalidIndex) {
    // Tree had one node; re-root it.
    root_ = node;
    return;
  }
  std::size_t parent = rng.index(nodes_.size());
  while (parent == node) parent = rng.index(nodes_.size());
  attach(node, parent, rng.bernoulli(0.5));
}

bool BTree::valid() const {
  std::vector<bool> module_seen(nodes_.size(), false);
  std::vector<bool> visited(nodes_.size(), false);
  // Walk from the root; count reachable nodes and check link mutuality.
  std::vector<std::size_t> stack{root_};
  std::size_t reached = 0;
  if (root_ == kInvalidIndex || nodes_[root_].parent != kInvalidIndex)
    return false;
  while (!stack.empty()) {
    const std::size_t n = stack.back();
    stack.pop_back();
    if (n >= nodes_.size() || visited[n]) return false;
    visited[n] = true;
    ++reached;
    const Node& nd = nodes_[n];
    if (nd.module >= nodes_.size() || module_seen[nd.module]) return false;
    module_seen[nd.module] = true;
    for (const std::size_t child : {nd.left, nd.right}) {
      if (child == kInvalidIndex) continue;
      if (child >= nodes_.size() || nodes_[child].parent != n) return false;
      stack.push_back(child);
    }
  }
  return reached == nodes_.size();
}

PackingQuality optimize_btree(BTree& tree, const std::vector<double>& width,
                              const std::vector<double>& height,
                              std::size_t moves, Rng& rng) {
  double module_area = 0.0;
  for (std::size_t i = 0; i < width.size(); ++i)
    module_area += width[i] * height[i];

  double bw = 0.0, bh = 0.0;
  (void)tree.pack(width, height, bw, bh);
  double current_area = bw * bh;
  double best = current_area;
  BTree best_tree = tree;

  // Greedy SA with a short geometric schedule, mirroring the budget the
  // sequence-pair comparison receives.
  double temperature = 0.2 * best;
  const double cooling = std::pow(1e-3, 1.0 / std::max<double>(1.0, moves));
  for (std::size_t mv = 0; mv < moves; ++mv) {
    BTree candidate = tree;
    if (rng.bernoulli(0.5))
      candidate.swap_random(rng);
    else
      candidate.move_random(rng);
    (void)candidate.pack(width, height, bw, bh);
    const double area = bw * bh;
    const double delta = area - current_area;
    if (delta <= 0.0 ||
        rng.uniform() < std::exp(-delta / std::max(temperature, 1e-9))) {
      tree = std::move(candidate);
      current_area = area;
      if (area < best) {
        best = area;
        best_tree = tree;
      }
    }
    temperature *= cooling;
  }
  tree = std::move(best_tree);

  PackingQuality q;
  q.bbox_area = best;
  q.module_area = module_area;
  return q;
}

}  // namespace tsc3d::floorplan
