#include "floorplan/cost.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "leakage/pearson.hpp"
#include "tsv/planner.hpp"

namespace tsc3d::floorplan {

CostWeights power_aware_weights() {
  CostWeights w;  // classical criteria equally weighted; no leakage terms
  return w;
}

CostWeights tsc_aware_weights() {
  CostWeights w;
  // The paper evaluates the leakage analysis inside every loop iteration;
  // our expensive terms refresh at an interval instead, so the
  // correlation term carries extra weight to compensate for the
  // staleness between refreshes.
  w.correlation = 2.5;
  w.entropy = 1.0;
  w.power_gradient = 1.0;
  return w;
}

CostEvaluator::CostEvaluator(Floorplan3D& fp, const thermal::PowerBlur& blur,
                             Options options)
    : fp_(fp),
      blur_(blur),
      opt_(std::move(options)),
      timing_(fp, opt_.timing) {
  opt_.voltage.objective = opt_.voltage_objective;
  if (opt_.detailed_engine != nullptr &&
      (opt_.detailed_engine->nx() != opt_.leakage_grid ||
       opt_.detailed_engine->ny() != opt_.leakage_grid))
    throw std::invalid_argument(
        "CostEvaluator: detailed_engine grid must match leakage_grid");
  cached_correlation_.assign(fp_.tech().num_dies, 0.0);
  cached_entropy_.assign(fp_.tech().num_dies, 0.0);
}

void CostEvaluator::set_thermal_tolerance_scale(double scale) {
  if (opt_.detailed_engine != nullptr)
    opt_.detailed_engine->set_tolerance_scale(scale);
}

void CostEvaluator::measure_layout_terms_full(CostBreakdown& c) const {
  const Rect outline = fp_.outline();
  const double out_area = outline.area();
  c.bbox_area_ratio = 0.0;
  c.outline_penalty = 0.0;
  c.fits_outline = true;
  for (std::size_t d = 0; d < fp_.tech().num_dies; ++d) {
    double w = 0.0, h = 0.0;
    for (const std::size_t i : fp_.modules_on_die(d)) {
      const Module& m = fp_.modules()[i];
      w = std::max(w, m.shape.right());
      h = std::max(h, m.shape.top());
    }
    c.bbox_area_ratio += (w * h) / out_area;
    const double over_w = std::max(0.0, w - outline.w) / outline.w;
    const double over_h = std::max(0.0, h - outline.h) / outline.h;
    c.outline_penalty += over_w + over_h + over_w * over_h;
    if (over_w > 0.0 || over_h > 0.0) c.fits_outline = false;
  }
  c.wirelength_um = fp_.hpwl();
  c.delay_ns = timing_.analyze().critical_delay_ns;
}

void CostEvaluator::measure_layout_terms_incremental(CostBreakdown& c) {
  // Identical arithmetic over identical values: die_bounds() serves the
  // same max-right/max-top pair the rescan derives, hpwl_cached() and
  // analyze_cached() recompute exactly the dirty nets and re-reduce in
  // canonical net order -- so every term is bitwise-equal to
  // measure_layout_terms_full (the cross-check enforces it).
  //
  // Delta form: the per-die area/outline contributions are cached against
  // the bounds values they were derived from, so only the dies the move
  // actually changed re-run the division/max arithmetic; the totals are
  // re-summed over all dies in die order, keeping the reduction order --
  // and therefore the bits -- identical to the full rescan.
  const Rect outline = fp_.outline();
  const double out_area = outline.area();
  if (die_terms_.size() != fp_.tech().num_dies ||
      die_terms_outline_w_ != outline.w || die_terms_outline_h_ != outline.h) {
    die_terms_.assign(fp_.tech().num_dies, DieTermCache{});
    die_terms_outline_w_ = outline.w;
    die_terms_outline_h_ = outline.h;
  }
  c.bbox_area_ratio = 0.0;
  c.outline_penalty = 0.0;
  c.fits_outline = true;
  for (std::size_t d = 0; d < fp_.tech().num_dies; ++d) {
    const Floorplan3D::DieBounds b = fp_.die_bounds(d);
    DieTermCache& t = die_terms_[d];
    if (b.width != t.width || b.height != t.height) {
      t.width = b.width;
      t.height = b.height;
      t.area_ratio = (b.width * b.height) / out_area;
      t.over_w = std::max(0.0, b.width - outline.w) / outline.w;
      t.over_h = std::max(0.0, b.height - outline.h) / outline.h;
    }
    c.bbox_area_ratio += t.area_ratio;
    c.outline_penalty += t.over_w + t.over_h + t.over_w * t.over_h;
    if (t.over_w > 0.0 || t.over_h > 0.0) c.fits_outline = false;
  }
  c.wirelength_um = fp_.hpwl_cached();
  c.delay_ns = timing_.analyze_cached().critical_delay_ns;
}

// --- trial (speculative) evaluation --------------------------------------

void CostEvaluator::trial_begin() {
  fp_.begin_trial();
  timing_.begin_trial();
}

void CostEvaluator::trial_commit() {
  fp_.commit_trial();
  timing_.commit_trial();
}

void CostEvaluator::trial_rollback() {
  fp_.rollback_trial();
  timing_.rollback_trial();
}

bool CostEvaluator::in_trial() const { return fp_.in_trial(); }

void CostEvaluator::scale_outline_weight(double factor) {
  // Raw-term caches store weight-independent values and combine() applies
  // the weights fresh per call, so no invalidation is needed -- but
  // escalating inside a batch or trial bracket would price members of one
  // comparison set under different weights.  Make that misuse loud.
  if (batch_active_)
    throw std::logic_error(
        "CostEvaluator::scale_outline_weight: a batch is active -- staged "
        "candidates were priced under the old weight");
  if (in_trial())
    throw std::logic_error(
        "CostEvaluator::scale_outline_weight: a move transaction is open -- "
        "escalate only between transactions");
  opt_.weights.outline *= factor;
}

void CostEvaluator::measure_cheap(CostBreakdown& c) {
  if (opt_.incremental) {
    measure_layout_terms_incremental(c);
    if (opt_.cross_check_interval > 0 &&
        ++cheap_evals_ % opt_.cross_check_interval == 0) {
      CostBreakdown ref;
      measure_layout_terms_full(ref);
      if (ref.bbox_area_ratio != c.bbox_area_ratio ||
          ref.outline_penalty != c.outline_penalty ||
          ref.fits_outline != c.fits_outline ||
          ref.wirelength_um != c.wirelength_um ||
          ref.delay_ns != c.delay_ns)
        throw std::logic_error(
            "CostEvaluator: incremental cheap terms diverged from the full "
            "recompute -- some code moved modules without "
            "note_module_moved()/invalidate_layout_caches()");
    }
  } else {
    measure_layout_terms_full(c);
  }

  // Spatial entropy is the paper's cheap per-iteration leakage proxy
  // (Sec. 4.2): it needs no thermal analysis, so it is evaluated on
  // every move when the setup weights it.
  if (opt_.weights.entropy != 0.0) {
    const std::size_t g = opt_.leakage_grid;
    c.entropy.clear();
    for (std::size_t d = 0; d < fp_.tech().num_dies; ++d) {
      c.entropy.push_back(leakage::spatial_entropy(
          fp_.power_map(d, g, g), opt_.entropy_options));
    }
  }
}

void CostEvaluator::measure_voltage_raw(CostBreakdown& c) {
  power::VoltageAssigner assigner(fp_, timing_, opt_.voltage);
  const power::VoltageAssignment va = assigner.assign();
  // assign() rewrites Module::voltage_index, which scales every module
  // delay: drop the timing engine's cached per-net stage delays.
  timing_.note_voltages_changed();
  c.power_w = va.total_power_w;
  c.num_volumes = static_cast<double>(va.num_volumes());
  c.power_gradient = va.intra_density_stddev + va.inter_density_stddev;
}

void CostEvaluator::measure_voltage(CostBreakdown& c) {
  measure_voltage_raw(c);
  cached_power_ = c.power_w;
  cached_volumes_ = c.num_volumes;
  cached_gradient_ = c.power_gradient;
}

void CostEvaluator::measure_thermal(CostBreakdown& c) {
  // Fig. 3 inner flow: TSV placement -> fast thermal -> leakage analysis.
  tsv::place_signal_tsvs(fp_);

  const std::size_t g = opt_.leakage_grid;
  std::vector<GridD> power_maps;
  power_maps.reserve(fp_.tech().num_dies);
  for (std::size_t d = 0; d < fp_.tech().num_dies; ++d)
    power_maps.push_back(fp_.power_map(d, g, g));
  const GridD tsv_map = fp_.tsv_density_map(g, g);
  // Detailed in-loop thermal when an engine is wired up (successive
  // layouts differ by one move, so the warm-started solve is cheap);
  // the power-blurring estimate otherwise.
  const std::vector<GridD> temps =
      opt_.detailed_engine != nullptr
          ? opt_.detailed_engine->solve_steady(power_maps, tsv_map)
                .die_temperature
          : blur_.estimate(power_maps, tsv_map);

  double peak = 0.0;
  c.correlation.clear();
  c.entropy.clear();
  for (std::size_t d = 0; d < fp_.tech().num_dies; ++d) {
    peak = std::max(peak, temps[d].max());
    c.correlation.push_back(leakage::pearson(power_maps[d], temps[d]));
    c.entropy.push_back(
        leakage::spatial_entropy(power_maps[d], opt_.entropy_options));
  }
  c.peak_k_rise = std::max(0.0, peak - temps[0].min());

  cached_peak_rise_ = c.peak_k_rise;
  cached_correlation_ = c.correlation;
  cached_entropy_ = c.entropy;
}

void CostEvaluator::init_normalizers(const CostBreakdown& c) {
  auto guard = [](double v) { return v > 1e-12 ? v : 1.0; };
  norm_.area = guard(c.bbox_area_ratio);
  norm_.wl = guard(c.wirelength_um);
  norm_.delay = guard(c.delay_ns);
  norm_.peak = guard(c.peak_k_rise);
  norm_.power = guard(c.power_w);
  norm_.volumes = guard(c.num_volumes);
  norm_.gradient = guard(c.power_gradient);
  double corr = 0.0, ent = 0.0;
  for (const double r : c.correlation) corr += std::abs(r);
  for (const double s : c.entropy) ent += s;
  norm_.corr = guard(corr / guard(static_cast<double>(c.correlation.size())));
  norm_.entropy = guard(ent / guard(static_cast<double>(c.entropy.size())));
  norm_.ready = true;
}

double CostEvaluator::combine(const CostBreakdown& c) const {
  const CostWeights& w = opt_.weights;
  double corr = 0.0;
  for (const double r : c.correlation) corr += std::abs(r);
  if (!c.correlation.empty()) corr /= static_cast<double>(c.correlation.size());
  double ent = 0.0;
  for (const double s : c.entropy) ent += s;
  if (!c.entropy.empty()) ent /= static_cast<double>(c.entropy.size());

  return w.area * (c.bbox_area_ratio / norm_.area) +
         w.outline * c.outline_penalty +
         w.wirelength * (c.wirelength_um / norm_.wl) +
         w.delay * (c.delay_ns / norm_.delay) +
         w.peak_temp * (c.peak_k_rise / norm_.peak) +
         w.power * (c.power_w / norm_.power) +
         w.volumes * (c.num_volumes / norm_.volumes) +
         w.power_gradient * (c.power_gradient / norm_.gradient) +
         w.correlation * (corr / norm_.corr) +
         w.entropy * (ent / norm_.entropy);
}

CostBreakdown CostEvaluator::evaluate_cheap() {
  CostBreakdown c;
  measure_cheap(c);
  // Carry the cached expensive terms (entropy is cheap and was measured
  // live above whenever its weight is active).
  c.peak_k_rise = cached_peak_rise_;
  c.power_w = cached_power_;
  c.num_volumes = cached_volumes_;
  c.power_gradient = cached_gradient_;
  c.correlation = cached_correlation_;
  if (c.entropy.empty()) c.entropy = cached_entropy_;
  if (!have_expensive_) {
    // First contact: populate the caches so the totals are meaningful.
    measure_voltage(c);
    measure_thermal(c);
    have_expensive_ = true;
  }
  if (!norm_.ready) init_normalizers(c);
  c.total = combine(c);
  return c;
}

CostBreakdown CostEvaluator::evaluate_thermal() {
  CostBreakdown c;
  measure_cheap(c);
  if (!have_expensive_) {
    measure_voltage(c);
    have_expensive_ = true;
  } else {
    c.power_w = cached_power_;
    c.num_volumes = cached_volumes_;
    c.power_gradient = cached_gradient_;
  }
  measure_thermal(c);
  if (!norm_.ready) init_normalizers(c);
  c.total = combine(c);
  return c;
}

CostBreakdown CostEvaluator::evaluate_full() {
  CostBreakdown c;
  measure_cheap(c);
  measure_voltage(c);
  measure_thermal(c);
  have_expensive_ = true;
  if (!norm_.ready) init_normalizers(c);
  c.total = combine(c);
  return c;
}

// --- batched scoring -----------------------------------------------------

void CostEvaluator::batch_begin(EvalLevel level, std::size_t capacity) {
  if (batch_active_)
    throw std::logic_error("CostEvaluator: a batch is already active");
  batch_level_ = level;
  batch_.clear();
  batch_.reserve(capacity);
  batch_active_ = true;
  batch_evaluated_ = false;
}

void CostEvaluator::batch_stage() {
  if (!batch_active_ || batch_evaluated_)
    throw std::logic_error("CostEvaluator: batch_stage needs an open batch");
  BatchCandidate cand;
  CostBreakdown& c = cand.c;
  measure_cheap(c);

  if (batch_level_ == EvalLevel::cheap) {
    // Mirror evaluate_cheap: carry the cached expensive terms (entropy
    // was measured live above when its weight is active), populating the
    // caches inline on first contact.
    c.peak_k_rise = cached_peak_rise_;
    c.power_w = cached_power_;
    c.num_volumes = cached_volumes_;
    c.power_gradient = cached_gradient_;
    c.correlation = cached_correlation_;
    if (c.entropy.empty()) c.entropy = cached_entropy_;
    if (!have_expensive_) {
      measure_voltage(c);
      measure_thermal(c);
      have_expensive_ = true;
    }
  } else {
    if (batch_level_ == EvalLevel::full) {
      // Deferred caching: batch_adopt installs the selected candidate's
      // values, so staging measures without touching the caches.
      measure_voltage_raw(c);
    } else if (!have_expensive_) {
      measure_voltage(c);
      have_expensive_ = true;
    } else {
      c.power_w = cached_power_;
      c.num_volumes = cached_volumes_;
      c.power_gradient = cached_gradient_;
    }
    // The front half of measure_thermal: place this candidate's signal
    // TSVs, then capture the maps the batched solve and the leakage
    // terms read.
    tsv::place_signal_tsvs(fp_);
    const std::size_t g = opt_.leakage_grid;
    cand.power_maps.reserve(fp_.tech().num_dies);
    for (std::size_t d = 0; d < fp_.tech().num_dies; ++d)
      cand.power_maps.push_back(fp_.power_map(d, g, g));
    cand.tsv_map = fp_.tsv_density_map(g, g);
  }
  batch_.push_back(std::move(cand));
}

std::vector<CostBreakdown> CostEvaluator::batch_evaluate() {
  if (!batch_active_ || batch_evaluated_)
    throw std::logic_error(
        "CostEvaluator: batch_evaluate needs an open, unevaluated batch");

  if (batch_level_ != EvalLevel::cheap && !batch_.empty()) {
    // Detailed path: ONE batched engine call scores every candidate
    // against the shared assembly (first candidate's TSV arrangement);
    // each candidate warm-starts from the last adopted field.  The
    // power-blurring path is stateless per candidate and uses each
    // candidate's own TSV map.
    std::vector<std::vector<GridD>> solved;
    if (opt_.detailed_engine != nullptr) {
      std::vector<std::vector<GridD>> powers;
      powers.reserve(batch_.size());
      for (const BatchCandidate& cand : batch_)
        powers.push_back(cand.power_maps);
      const std::vector<thermal::ThermalResult> results =
          opt_.detailed_engine->solve_steady_batch(powers,
                                                   batch_.front().tsv_map);
      solved.reserve(results.size());
      for (const thermal::ThermalResult& r : results)
        solved.push_back(r.die_temperature);
    } else {
      solved.reserve(batch_.size());
      for (const BatchCandidate& cand : batch_)
        solved.push_back(blur_.estimate(cand.power_maps, cand.tsv_map));
    }

    // The back half of measure_thermal, per candidate.
    for (std::size_t i = 0; i < batch_.size(); ++i) {
      CostBreakdown& c = batch_[i].c;
      const std::vector<GridD>& temps = solved[i];
      double peak = 0.0;
      c.correlation.clear();
      c.entropy.clear();
      for (std::size_t d = 0; d < fp_.tech().num_dies; ++d) {
        peak = std::max(peak, temps[d].max());
        c.correlation.push_back(
            leakage::pearson(batch_[i].power_maps[d], temps[d]));
        c.entropy.push_back(leakage::spatial_entropy(batch_[i].power_maps[d],
                                                     opt_.entropy_options));
      }
      c.peak_k_rise = std::max(0.0, peak - temps[0].min());
    }
  }

  std::vector<CostBreakdown> out;
  out.reserve(batch_.size());
  for (BatchCandidate& cand : batch_) {
    if (!norm_.ready) init_normalizers(cand.c);
    cand.c.total = combine(cand.c);
    out.push_back(cand.c);
  }
  batch_evaluated_ = true;
  return out;
}

void CostEvaluator::batch_adopt(std::size_t index) {
  if (!batch_active_ || !batch_evaluated_)
    throw std::logic_error(
        "CostEvaluator: batch_adopt needs an evaluated batch");
  if (index >= batch_.size())
    throw std::out_of_range("CostEvaluator: batch_adopt index out of range");
  if (batch_level_ != EvalLevel::cheap) {
    const CostBreakdown& c = batch_[index].c;
    cached_peak_rise_ = c.peak_k_rise;
    cached_correlation_ = c.correlation;
    cached_entropy_ = c.entropy;
    if (batch_level_ == EvalLevel::full) {
      cached_power_ = c.power_w;
      cached_volumes_ = c.num_volumes;
      cached_gradient_ = c.power_gradient;
      have_expensive_ = true;
    }
    if (opt_.detailed_engine != nullptr)
      opt_.detailed_engine->adopt_candidate(index);
  }
  batch_active_ = false;
  batch_evaluated_ = false;
}

CostEvaluator::CheckpointState CostEvaluator::checkpoint_state() const {
  if (batch_active_ || in_trial())
    throw std::logic_error(
        "CostEvaluator: cannot checkpoint inside a batch or trial bracket");
  CheckpointState st;
  st.outline_weight = opt_.weights.outline;
  st.peak_rise = cached_peak_rise_;
  st.power = cached_power_;
  st.volumes = cached_volumes_;
  st.gradient = cached_gradient_;
  st.correlation = cached_correlation_;
  st.entropy = cached_entropy_;
  st.have_expensive = have_expensive_;
  st.cheap_evals = cheap_evals_;
  st.norm_area = norm_.area;
  st.norm_wl = norm_.wl;
  st.norm_delay = norm_.delay;
  st.norm_peak = norm_.peak;
  st.norm_power = norm_.power;
  st.norm_volumes = norm_.volumes;
  st.norm_corr = norm_.corr;
  st.norm_entropy = norm_.entropy;
  st.norm_gradient = norm_.gradient;
  st.norm_ready = norm_.ready;
  return st;
}

void CostEvaluator::restore_checkpoint_state(const CheckpointState& st) {
  if (batch_active_ || in_trial())
    throw std::logic_error(
        "CostEvaluator: cannot restore inside a batch or trial bracket");
  opt_.weights.outline = st.outline_weight;
  cached_peak_rise_ = st.peak_rise;
  cached_power_ = st.power;
  cached_volumes_ = st.volumes;
  cached_gradient_ = st.gradient;
  cached_correlation_ = st.correlation;
  cached_entropy_ = st.entropy;
  have_expensive_ = st.have_expensive;
  cheap_evals_ = st.cheap_evals;
  norm_.area = st.norm_area;
  norm_.wl = st.norm_wl;
  norm_.delay = st.norm_delay;
  norm_.peak = st.norm_peak;
  norm_.power = st.norm_power;
  norm_.volumes = st.norm_volumes;
  norm_.corr = st.norm_corr;
  norm_.entropy = st.norm_entropy;
  norm_.gradient = st.norm_gradient;
  norm_.ready = st.norm_ready;
  // The value-keyed die-term cache self-heals; clear it so the first
  // post-resume evaluation recomputes from the repacked bounds.
  die_terms_.clear();
  die_terms_outline_w_ = -1.0;
  die_terms_outline_h_ = -1.0;
}

}  // namespace tsc3d::floorplan
