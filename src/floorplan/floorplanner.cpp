#include "floorplan/floorplanner.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "leakage/activity.hpp"
#include "leakage/pearson.hpp"
#include "thermal/power_blur.hpp"
#include "tsv/planner.hpp"

namespace tsc3d::floorplan {

Floorplanner::Floorplanner(FloorplannerOptions options)
    : opt_(std::move(options)) {}

FloorplannerOptions Floorplanner::power_aware_setup() {
  FloorplannerOptions o;
  o.mode = FlowMode::power_aware;
  o.voltage.objective = power::VoltageObjective::power_aware;
  o.dummy_insertion = false;
  return o;
}

FloorplannerOptions Floorplanner::tsc_aware_setup() {
  FloorplannerOptions o;
  o.mode = FlowMode::tsc_aware;
  o.voltage.objective = power::VoltageObjective::tsc_aware;
  o.dummy_insertion = true;
  // Leakage terms need fresh thermal estimates to provide a usable
  // gradient to the annealer: refresh the fast thermal analysis every few
  // moves (power blurring makes this affordable; the voltage assignment
  // stays on the slower full-eval cadence).
  o.anneal.thermal_eval_interval = 10;
  return o;
}

FloorplanMetrics Floorplanner::run(Floorplan3D& fp, Rng& rng) const {
  return run(fp, rng, ExplorationHooks{});
}

FloorplanMetrics Floorplanner::run(Floorplan3D& fp, Rng& rng,
                                   const ExplorationHooks& hooks) const {
  const auto t_start = std::chrono::steady_clock::now();
  FloorplanMetrics metrics;
  const ExplorationCheckpoint* resume = hooks.resume;

  // --- cost evaluator options with the mode's weights -------------------
  ThermalConfig fast_cfg = opt_.thermal;
  fast_cfg.grid_nx = fast_cfg.grid_ny = opt_.fast_grid;
  CostEvaluator::Options eval_opt;
  eval_opt.weights = opt_.mode == FlowMode::power_aware
                         ? power_aware_weights()
                         : tsc_aware_weights();
  eval_opt.voltage_objective = opt_.voltage.objective;
  eval_opt.timing = opt_.timing;
  eval_opt.voltage = opt_.voltage;
  eval_opt.leakage_grid = opt_.fast_grid;
  eval_opt.entropy_options = opt_.entropy;
  eval_opt.incremental = opt_.incremental_eval;
  eval_opt.cross_check_interval = opt_.cross_check_interval;

  // --- simulated annealing ------------------------------------------------
  LayoutState state;
  if (resume == nullptr) {
    state = LayoutState::initial(fp, rng, opt_.hot_modules_to_top);
    // incremental_eval == false is a full A/B of the seed pipeline: cached
    // cheap terms off (above) AND dirty-die packing off, so every apply
    // packs and rewrites everything exactly as before.
    if (!opt_.incremental_eval) state.disable_tracking();
    if (opt_.auto_clock_factor > 0.0) {
      // Timing budget derived from the initial layout (all modules at the
      // nominal voltage); see FloorplannerOptions::auto_clock_factor.
      state.apply_to(fp);
      const power::ElmoreTiming initial_timing(fp, opt_.timing);
      fp.tech().clock_period_ns = std::max(
          opt_.auto_clock_factor * initial_timing.analyze().critical_delay_ns,
          1e-3);
    }
  } else {
    // Resume: the initial-layout construction, the auto-clock derivation
    // and (for tempering) the orchestrator seed draw all consumed RNG in
    // the original run; their outcomes -- and the stream position after
    // them -- come back from the checkpoint instead of being replayed.
    fp.tech().clock_period_ns = resume->clock_period_ns;
    rng.set_state(resume->flow_rng);
  }
  if (opt_.chains.chains > 1) {
    if (resume != nullptr && !resume->tempering)
      throw std::invalid_argument(
          "Floorplanner: single-chain checkpoint cannot resume a tempering "
          "run");
    // Parallel tempering: K chains, each with its own design copy and
    // thermal/cost machinery, exchange states on a temperature ladder.
    ChainSetup setup;
    setup.fast_thermal = fast_cfg;
    setup.blur_radius = opt_.blur_radius;
    setup.detailed_inner_thermal = opt_.detailed_inner_thermal;
    setup.engine_parallel = opt_.parallel;
    setup.eval = eval_opt;
    setup.anneal = opt_.anneal;
    setup.chains = opt_.chains;
    ChainOrchestrator orchestrator(std::move(setup));
    if (hooks.save || resume != nullptr) {
      const std::uint64_t seed = resume == nullptr ? rng() : 0;
      metrics.chains = orchestrator.run(fp, state, seed, &hooks, rng.state());
    } else {
      metrics.chains = orchestrator.run(fp, state, rng());
    }
    metrics.anneal = metrics.chains.chains[metrics.chains.winner];
  } else {
    if (resume != nullptr && (resume->tempering || resume->chains.size() != 1))
      throw std::invalid_argument(
          "Floorplanner: tempering checkpoint cannot resume a single-chain "
          "run");
    // Single chain: one fast engine serves the whole in-loop resolution
    // (power-blur calibration and, optionally, the detailed in-loop
    // solves); its cached assembly and warm-start state persist across
    // the annealing run.
    thermal::ThermalEngine fast_engine(fp.tech(), fast_cfg, opt_.parallel,
                                       thermal::EngineRole::fast_loop);
    const thermal::PowerBlur blur(fast_engine, opt_.blur_radius);
    if (opt_.detailed_inner_thermal) eval_opt.detailed_engine = &fast_engine;
    CostEvaluator evaluator(fp, blur, eval_opt);
    Annealer annealer(fp, evaluator, opt_.anneal);
    thermal::ThermalEngine* engine = eval_opt.detailed_engine;
    AnnealSession session;
    if (resume != nullptr) {
      restore_chain(resume->chains[0], session, state, rng, evaluator,
                    engine, fp);
    } else {
      session = annealer.begin(state, rng);
    }
    const std::size_t save_interval =
        std::max<std::size_t>(1, hooks.checkpoint_interval);
    while (annealer.run_stage(session, rng)) {
      // Checkpoint at the stage boundary (no bracket open, no move
      // half-applied); the final boundary always saves so a crash during
      // finish() resumes with zero stages left to redo.
      if (hooks.save && (session.stage % save_interval == 0 ||
                         session.stage >= opt_.anneal.stages)) {
        ExplorationCheckpoint ck;
        ck.tempering = false;
        ck.clock_period_ns = fp.tech().clock_period_ns;
        ck.flow_rng = rng.state();
        ck.chains.push_back(
            capture_chain(session, rng, evaluator, engine, fp));
        hooks.save(ck);
      }
    }
    metrics.anneal = annealer.finish(session, rng);
  }
  metrics.legal = fp.check_legality().legal;

  // --- final TSV placement and voltage assignment -----------------------
  tsv::place_signal_tsvs(fp);
  const power::ElmoreTiming timing(fp, opt_.timing);
  power::VoltageOptions vopt = opt_.voltage;
  power::VoltageAssigner assigner(fp, timing, vopt);
  const power::VoltageAssignment va = assigner.assign();
  metrics.voltage_volumes = va.num_volumes();

  // --- post-processing: dummy thermal TSVs (Sec. 6.2) --------------------
  const bool do_dummy =
      opt_.dummy_insertion && opt_.mode == FlowMode::tsc_aware;
  if (do_dummy) {
    ThermalConfig sampling_cfg = opt_.thermal;
    sampling_cfg.grid_nx = sampling_cfg.grid_ny = opt_.sampling_grid;
    thermal::ThermalEngine sampling_engine(fp.tech(), sampling_cfg,
                                           opt_.parallel,
                                           thermal::EngineRole::sampling);
    metrics.dummy = tsv::insert_dummy_tsvs(fp, sampling_engine, rng,
                                           opt_.dummy);
  }

  // --- detailed verification (Fig. 3, bottom) -----------------------------
  ThermalConfig verify_cfg = opt_.thermal;
  verify_cfg.grid_nx = verify_cfg.grid_ny = opt_.verify_grid;
  thermal::ThermalEngine verify_engine(fp.tech(), verify_cfg, opt_.parallel,
                                       thermal::EngineRole::verify);
  const std::size_t g = opt_.verify_grid;
  std::vector<GridD> power_maps;
  for (std::size_t d = 0; d < fp.tech().num_dies; ++d)
    power_maps.push_back(fp.power_map(d, g, g));
  const thermal::ThermalResult verified =
      verify_engine.solve_steady(power_maps, fp.tsv_density_map(g, g));

  for (std::size_t d = 0; d < fp.tech().num_dies; ++d) {
    metrics.correlation.push_back(
        leakage::pearson(power_maps[d], verified.die_temperature[d]));
    metrics.entropy.push_back(
        leakage::spatial_entropy(power_maps[d], opt_.entropy));
  }
  metrics.peak_k = verified.peak_k;
  metrics.power_w = fp.total_power();
  metrics.critical_delay_ns = timing.analyze().critical_delay_ns;
  metrics.wirelength_m = fp.hpwl() * 1e-6;
  metrics.signal_tsvs = fp.tsv_count(TsvKind::signal);
  metrics.dummy_tsvs = fp.tsv_count(TsvKind::dummy);

  metrics.runtime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_start)
          .count();
  return metrics;
}

}  // namespace tsc3d::floorplan
