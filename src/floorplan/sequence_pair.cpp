#include "floorplan/sequence_pair.hpp"

#include <stdexcept>

namespace tsc3d::floorplan {

SequencePair::SequencePair(std::vector<std::size_t> members)
    : positive_(members), negative_(std::move(members)) {}

void SequencePair::shuffle(Rng& rng) {
  rng.shuffle(positive_);
  rng.shuffle(negative_);
}

void SequencePair::swap_positive(std::size_t i, std::size_t j) {
  std::swap(positive_.at(i), positive_.at(j));
}

void SequencePair::swap_negative(std::size_t i, std::size_t j) {
  std::swap(negative_.at(i), negative_.at(j));
}

void SequencePair::swap_both(std::size_t module_a, std::size_t module_b) {
  // Resolve every slot BEFORE mutating anything: throwing after the
  // positive sequence was already swapped would leave the pair
  // inconsistent (the two sequences describing different module sets).
  std::size_t slots[2][2];
  const std::vector<std::size_t>* seqs[2] = {&positive_, &negative_};
  for (std::size_t q = 0; q < 2; ++q) {
    const std::vector<std::size_t>& seq = *seqs[q];
    std::size_t ia = seq.size(), ib = seq.size();
    for (std::size_t s = 0; s < seq.size(); ++s) {
      if (seq[s] == module_a) ia = s;
      if (seq[s] == module_b) ib = s;
    }
    if (ia == seq.size() || ib == seq.size())
      throw std::invalid_argument("SequencePair::swap_both: module not found");
    slots[q][0] = ia;
    slots[q][1] = ib;
  }
  std::swap(positive_[slots[0][0]], positive_[slots[0][1]]);
  std::swap(negative_[slots[1][0]], negative_[slots[1][1]]);
}

void SequencePair::remove(std::size_t module) {
  for (auto* seq : {&positive_, &negative_}) {
    const auto it = std::find(seq->begin(), seq->end(), module);
    if (it != seq->end()) seq->erase(it);
  }
}

void SequencePair::insert(std::size_t module, std::size_t pos_slot,
                          std::size_t neg_slot) {
  pos_slot = std::min(pos_slot, positive_.size());
  neg_slot = std::min(neg_slot, negative_.size());
  positive_.insert(positive_.begin() + static_cast<long>(pos_slot), module);
  negative_.insert(negative_.begin() + static_cast<long>(neg_slot), module);
}

bool SequencePair::contains(std::size_t module) const {
  return std::find(positive_.begin(), positive_.end(), module) !=
         positive_.end();
}

}  // namespace tsc3d::floorplan
