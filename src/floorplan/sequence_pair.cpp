#include "floorplan/sequence_pair.hpp"

#include <stdexcept>

namespace tsc3d::floorplan {

SequencePair::SequencePair(std::vector<std::size_t> members)
    : positive_(members), negative_(std::move(members)) {
  rebuild_slot_maps();
}

SequencePair SequencePair::restore(std::vector<std::size_t> positive,
                                   std::vector<std::size_t> negative) {
  // Validate BEFORE rebuild_slot_maps: the maps are sized from the
  // positive sequence, so a rogue negative id would write out of bounds.
  std::vector<std::size_t> a = positive;
  std::vector<std::size_t> b = negative;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  if (a != b)
    throw std::invalid_argument(
        "SequencePair::restore: sequences disagree on membership");
  if (std::adjacent_find(a.begin(), a.end()) != a.end())
    throw std::invalid_argument(
        "SequencePair::restore: duplicate module id");
  SequencePair sp;
  sp.positive_ = std::move(positive);
  sp.negative_ = std::move(negative);
  sp.rebuild_slot_maps();
  return sp;
}

void SequencePair::rebuild_slot_maps() {
  std::size_t max_id = 0;
  for (const std::size_t id : positive_) max_id = std::max(max_id, id);
  const std::size_t span = positive_.empty() ? 0 : max_id + 1;
  pos_slot_of_.assign(span, kNoSlot);
  neg_slot_of_.assign(span, kNoSlot);
  for (std::size_t s = 0; s < positive_.size(); ++s)
    pos_slot_of_[positive_[s]] = s;
  for (std::size_t s = 0; s < negative_.size(); ++s)
    neg_slot_of_[negative_[s]] = s;
}

void SequencePair::shuffle(Rng& rng) {
  rng.shuffle(positive_);
  rng.shuffle(negative_);
  rebuild_slot_maps();
}

void SequencePair::swap_positive(std::size_t i, std::size_t j) {
  std::swap(positive_.at(i), positive_.at(j));
  pos_slot_of_[positive_[i]] = i;
  pos_slot_of_[positive_[j]] = j;
}

void SequencePair::swap_negative(std::size_t i, std::size_t j) {
  std::swap(negative_.at(i), negative_.at(j));
  neg_slot_of_[negative_[i]] = i;
  neg_slot_of_[negative_[j]] = j;
}

void SequencePair::swap_both(std::size_t module_a, std::size_t module_b) {
  // Resolve every slot BEFORE mutating anything: throwing after the
  // positive sequence was already swapped would leave the pair
  // inconsistent (the two sequences describing different module sets).
  const std::size_t span = pos_slot_of_.size();
  if (module_a >= span || module_b >= span ||
      pos_slot_of_[module_a] == kNoSlot || pos_slot_of_[module_b] == kNoSlot)
    throw std::invalid_argument("SequencePair::swap_both: module not found");
  const std::size_t pa = pos_slot_of_[module_a];
  const std::size_t pb = pos_slot_of_[module_b];
  const std::size_t na = neg_slot_of_[module_a];
  const std::size_t nb = neg_slot_of_[module_b];
  std::swap(positive_[pa], positive_[pb]);
  std::swap(negative_[na], negative_[nb]);
  pos_slot_of_[module_a] = pb;
  pos_slot_of_[module_b] = pa;
  neg_slot_of_[module_a] = nb;
  neg_slot_of_[module_b] = na;
}

void SequencePair::remove(std::size_t module) {
  for (auto* seq : {&positive_, &negative_}) {
    const auto it = std::find(seq->begin(), seq->end(), module);
    if (it != seq->end()) seq->erase(it);
  }
  rebuild_slot_maps();
}

void SequencePair::insert(std::size_t module, std::size_t pos_slot,
                          std::size_t neg_slot) {
  pos_slot = std::min(pos_slot, positive_.size());
  neg_slot = std::min(neg_slot, negative_.size());
  positive_.insert(positive_.begin() + static_cast<long>(pos_slot), module);
  negative_.insert(negative_.begin() + static_cast<long>(neg_slot), module);
  rebuild_slot_maps();
}

bool SequencePair::contains(std::size_t module) const {
  return module < pos_slot_of_.size() && pos_slot_of_[module] != kNoSlot;
}

}  // namespace tsc3d::floorplan
