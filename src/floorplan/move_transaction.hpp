// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Transactional trial moves: a speculative evaluate/commit/rollback
// bracket around one annealing move.  The classic loop pattern
//
//   mutate state -> apply_to(fp) -> evaluate -> [reject: revert state,
//   apply_to(fp) again / re-dirty everything]
//
// pays the full re-pack + cache-rebuild price on every rejection, which
// dominates an annealing run (most moves are rejected).  A
// MoveTransaction instead journals every floorplan/evaluator cache cell
// the speculative move touches (first touch only -- see
// Floorplan3D::begin_trial and ElmoreTiming::begin_trial) and, on
// rollback, restores them bitwise AND restores the LayoutState's die
// content versions, so the floorplan's layout stamps still match the
// state and the next apply_to() skips the untouched dies entirely.
//
// Phase machine:
//
//   idle --open()--> open --stage()--> staged --commit()----> idle
//                      |                        \-rollback()-> idle
//                      \--abort()--> idle   (kind-none moves: nothing
//                                            was staged, nothing to undo)
//
// Determinism contract: a transactional run is bitwise-identical to the
// classic incremental run, including the RNG stream position -- staging,
// commit, and rollback consume no randomness, and rollback restores
// every value a subsequent evaluation can observe
// (tests/test_incremental_eval.cpp pins this A/B).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/floorplan.hpp"
#include "floorplan/annealer.hpp"
#include "floorplan/cost.hpp"

namespace tsc3d::floorplan {

/// Record of one annealing move: enough data to revert it (backward
/// fields) or to re-apply it without consuming randomness (forward
/// fields, used when the batched loop adopts a proposal that was staged
/// and rolled back).  Filled by Annealer::random_move.
struct MoveRecord {
  enum class Kind { none, swap_pos, swap_neg, swap_both, resize, transfer,
                    exchange };
  Kind kind = Kind::none;
  std::size_t die_a = 0, die_b = 0;
  std::size_t slot_i = 0, slot_j = 0;
  std::size_t module_a = 0, module_b = 0;
  // --- backward (revert) data -------------------------------------------
  double old_w = 0.0, old_h = 0.0;
  std::size_t old_pos_slot = 0, old_neg_slot = 0;
  std::size_t old_pos_slot_b = 0, old_neg_slot_b = 0;
  // --- forward (replay) data --------------------------------------------
  double new_w = 0.0, new_h = 0.0;          ///< resize: chosen extents
  /// transfer: module_a's insertion slots in die_b; exchange: module_a's
  /// insertion slots in die_b.
  std::size_t ins_pos = 0, ins_neg = 0;
  std::size_t ins_pos_b = 0, ins_neg_b = 0; ///< exchange: module_b in die_a

  /// Restore the pre-move die content WITHOUT re-dirtying the restored
  /// dies: the caller restores the die versions too (MoveTransaction
  /// rollback), so stamps minted before the move match again and the
  /// next apply_to() skips the dies outright.
  void revert_slots(LayoutState& s) const;

  /// Classic revert: restore the content and mint fresh versions for the
  /// touched dies (they will re-pack on the next apply_to).  Identical
  /// semantics to the pre-transaction undo records.
  void revert(LayoutState& s) const;

  /// Re-apply the move from its recorded data, consuming no randomness;
  /// touched dies get fresh versions.  s must hold the same base content
  /// the move was originally proposed from.
  void replay(LayoutState& s) const;
};

/// One speculative move against (state, floorplan, evaluator).  Reusable:
/// open/stage/commit|rollback|abort cycles any number of times.  Phase
/// misuse (double open, commit without stage, ...) throws std::logic_error
/// -- the bracket is a correctness boundary, not a hint.
class MoveTransaction {
 public:
  MoveTransaction(Floorplan3D& fp, CostEvaluator& eval)
      : fp_(fp), eval_(eval) {}

  /// Open a transaction over `state` BEFORE the move mutates it: snapshots
  /// the per-die content versions so rollback can restore them.
  void open(LayoutState& state);

  /// Publish the (already state-mutated) move to the floorplan under a
  /// trial bracket: every cache cell apply_to() dirties is journaled and
  /// restorable.  After stage() the evaluator measures the trial layout.
  void stage();

  /// Keep the move: drop the journals, the trial layout becomes current.
  void commit();

  /// Reject the move: restore the state's content and die versions and
  /// every journaled floorplan/timing cache cell, bitwise.  The floorplan
  /// stamps match the state again, so the next apply_to() is a no-op for
  /// every die this move touched.
  void rollback(const MoveRecord& rec);

  /// Close a transaction whose move came back kind-none: nothing was
  /// staged, nothing to undo.
  void abort();

 private:
  enum class Phase { idle, open, staged };

  Floorplan3D& fp_;
  CostEvaluator& eval_;
  LayoutState* state_ = nullptr;
  std::vector<std::uint64_t> base_versions_;  ///< die versions at open()
  Phase phase_ = Phase::idle;
};

}  // namespace tsc3d::floorplan
