// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Sequence-pair floorplan representation with O(n log n) packing
// evaluation (the FAST-SP longest-common-subsequence scheme of Tang &
// Wong, using a Fenwick tree for prefix-maximum queries).
//
// Corblivar itself uses a corner-block-list representation; the sequence
// pair is an equivalent complete representation for packings and keeps
// the evaluation simple and fast.  One SequencePair describes the block
// arrangement on ONE die; the 3D floorplanner holds one per die plus the
// inter-die assignment (see LayoutState in annealer.hpp).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "core/geometry.hpp"
#include "core/rng.hpp"

namespace tsc3d::floorplan {

/// Result of packing one die.
struct Packing {
  /// Lower-left coordinates per sequence member, in the order of
  /// SequencePair::members().
  std::vector<Point> position;
  double width = 0.0;   ///< bounding-box extent of the packing
  double height = 0.0;
};

class SequencePair {
 public:
  SequencePair() = default;

  /// Create from an initial member list (global module ids); both
  /// sequences start in the given order and are typically shuffled by the
  /// caller.
  explicit SequencePair(std::vector<std::size_t> members);

  /// Rebuild a pair from previously captured sequences (checkpoint
  /// restore).  Both vectors must hold the same module set; throws
  /// std::invalid_argument otherwise.
  static SequencePair restore(std::vector<std::size_t> positive,
                              std::vector<std::size_t> negative);

  [[nodiscard]] std::size_t size() const { return positive_.size(); }
  [[nodiscard]] bool empty() const { return positive_.empty(); }
  [[nodiscard]] const std::vector<std::size_t>& positive() const {
    return positive_;
  }
  [[nodiscard]] const std::vector<std::size_t>& negative() const {
    return negative_;
  }
  /// Members in positive-sequence order (alias of positive()).
  [[nodiscard]] const std::vector<std::size_t>& members() const {
    return positive_;
  }

  /// Shuffle both sequences independently.
  void shuffle(Rng& rng);

  // --- simulated-annealing moves ----------------------------------------
  void swap_positive(std::size_t i, std::size_t j);
  void swap_negative(std::size_t i, std::size_t j);
  /// Swap the same two MODULES (not slots) in both sequences; O(1) via
  /// the maintained id -> slot maps.
  void swap_both(std::size_t module_a, std::size_t module_b);
  /// Remove a module (no-op if absent); O(n).
  void remove(std::size_t module);
  /// Insert a module at the given sequence slots (clamped); O(n).
  void insert(std::size_t module, std::size_t pos_slot, std::size_t neg_slot);
  [[nodiscard]] bool contains(std::size_t module) const;

  /// Pack the die: `width_of(id)` / `height_of(id)` supply the current
  /// block extents by global id.  Runs in O(n log n).
  template <typename WidthFn, typename HeightFn>
  [[nodiscard]] Packing pack(WidthFn&& width_of, HeightFn&& height_of) const;

 private:
  // Fenwick tree for prefix maxima over sequence slots.
  class PrefixMax {
   public:
    explicit PrefixMax(std::size_t n) : tree_(n + 1, 0.0) {}
    /// max over slots [0, slot]; slot == npos yields 0.
    [[nodiscard]] double query(std::size_t slot_plus_one) const {
      double best = 0.0;
      for (std::size_t i = slot_plus_one; i > 0; i -= i & (~i + 1))
        best = std::max(best, tree_[i]);
      return best;
    }
    void update(std::size_t slot, double value) {
      for (std::size_t i = slot + 1; i < tree_.size(); i += i & (~i + 1))
        tree_[i] = std::max(tree_[i], value);
    }

   private:
    std::vector<double> tree_;
  };

  [[nodiscard]] std::vector<std::size_t> negative_slot_of() const;

  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  /// Rebuild both id -> slot maps from the sequences (structural edits:
  /// construction, shuffle, remove, insert).
  void rebuild_slot_maps();

  std::vector<std::size_t> positive_;
  std::vector<std::size_t> negative_;
  // id -> slot per sequence, indexed by global module id and maintained
  // by every mutator: the swap moves update the two touched entries in
  // O(1), structural edits rebuild.  pack() reads the negative map
  // directly -- the slot values are the same integers the former
  // sort + lower_bound lookup produced, so packings are bitwise
  // unchanged -- and swap_both() resolves modules without scanning.
  std::vector<std::size_t> pos_slot_of_;
  std::vector<std::size_t> neg_slot_of_;
};

template <typename WidthFn, typename HeightFn>
Packing SequencePair::pack(WidthFn&& width_of, HeightFn&& height_of) const {
  Packing out;
  const std::size_t n = positive_.size();
  out.position.assign(n, Point{});
  if (n == 0) return out;

  // Map each module to its slot in the negative sequence via the
  // maintained id -> slot map (slots are dense 0..n-1, ids may be
  // sparse).  Invariant: positive_ and negative_ hold the SAME module
  // set (all mutators preserve it and keep the maps in sync), so every
  // positive id resolves to a negative slot.
  std::vector<std::size_t> neg_slot(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t id = positive_[i];
    assert(id < neg_slot_of_.size() && neg_slot_of_[id] != kNoSlot &&
           "SequencePair: positive/negative sequences disagree on membership");
    neg_slot[i] = neg_slot_of_[id];
  }

  // x-coordinates: blocks earlier in BOTH sequences are to the left.
  {
    PrefixMax bit(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t id = positive_[i];
      const std::size_t q = neg_slot[i];
      const double x = bit.query(q);  // max over slots < q (tree is 1-based)
      out.position[i].x = x;
      const double right = x + width_of(id);
      bit.update(q, right);
      out.width = std::max(out.width, right);
    }
  }
  // y-coordinates: blocks later in the positive but earlier in the
  // negative sequence are below; process the positive sequence in reverse.
  {
    PrefixMax bit(n);
    for (std::size_t i = n; i > 0; --i) {
      const std::size_t idx = i - 1;
      const std::size_t id = positive_[idx];
      const std::size_t q = neg_slot[idx];
      const double y = bit.query(q);
      out.position[idx].y = y;
      const double top = y + height_of(id);
      bit.update(q, top);
      out.height = std::max(out.height, top);
    }
  }
  return out;
}

}  // namespace tsc3d::floorplan
