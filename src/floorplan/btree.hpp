// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// B*-tree floorplan representation with contour-based packing -- the
// classic alternative to the sequence pair used by our annealer.  The
// paper's host floorplanner Corblivar is built on a corner-block-list
// style representation; sequence pairs and B*-trees are the other two
// standard complete representations for compacted placements.  We ship
// the B*-tree alongside the sequence pair so the representation choice
// is ablatable (bench/ablation_representation): same instances, same
// move budget, compare packing density and runtime.
//
// Semantics (Chang et al., DAC 2000): a binary tree over the modules;
// the root packs at the origin, a left child packs to the RIGHT of its
// parent (x = parent.x + parent.w), a right child packs ABOVE its parent
// at the same x.  The y coordinate is resolved against a horizontal
// contour structure, giving an admissible, compacted placement in
// amortized O(n) per packing.
#pragma once

#include <cstddef>
#include <vector>

#include "core/floorplan.hpp"
#include "core/rng.hpp"

namespace tsc3d::floorplan {

/// One packed rectangle of a B*-tree evaluation.
struct PackedBlock {
  std::size_t module = 0;  ///< index into the width/height arrays
  Rect shape;
};

/// A B*-tree over n modules (indices 0..n-1).
class BTree {
 public:
  /// A left-skewed initial chain (modules packed in a row).
  explicit BTree(std::size_t n);

  /// A random topology.
  BTree(std::size_t n, Rng& rng);

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  /// Pack with the given module extents; returns one PackedBlock per
  /// module plus the bounding box via the out parameters.
  [[nodiscard]] std::vector<PackedBlock> pack(
      const std::vector<double>& width, const std::vector<double>& height,
      double& bbox_w, double& bbox_h) const;

  // --- local-search moves (each preserves tree validity) ----------------
  /// Swap the modules stored at two random nodes.
  void swap_random(Rng& rng);
  /// Remove a random node and re-insert it at a random free child slot.
  void move_random(Rng& rng);

  /// Validity invariant (every module appears exactly once, child/parent
  /// links are mutual); exercised by tests after move sequences.
  [[nodiscard]] bool valid() const;

 private:
  struct Node {
    std::size_t module;                 ///< module stored at this node
    std::size_t parent = kInvalidIndex;
    std::size_t left = kInvalidIndex;   ///< packs right of this node
    std::size_t right = kInvalidIndex;  ///< packs above this node
  };

  void detach(std::size_t node);
  void attach(std::size_t node, std::size_t parent, bool as_left);

  std::size_t root_ = 0;
  std::vector<Node> nodes_;
};

/// Pack quality summary for the representation ablation.
struct PackingQuality {
  double bbox_area = 0.0;
  double module_area = 0.0;
  [[nodiscard]] double dead_space() const {
    return bbox_area > 0.0 ? 1.0 - module_area / bbox_area : 0.0;
  }
};

/// Greedy-SA local search minimizing the bounding-box area of one die's
/// packing; shared harness for the representation comparison.
[[nodiscard]] PackingQuality optimize_btree(BTree& tree,
                                            const std::vector<double>& width,
                                            const std::vector<double>& height,
                                            std::size_t moves, Rng& rng);

}  // namespace tsc3d::floorplan
