#include "floorplan/exploration_checkpoint.hpp"

#include <stdexcept>

namespace tsc3d::floorplan {

LayoutStateImage capture_layout(const LayoutState& state) {
  LayoutStateImage img;
  img.tracked = state.tracked();
  img.positive.reserve(state.die_sp.size());
  img.negative.reserve(state.die_sp.size());
  for (const SequencePair& sp : state.die_sp) {
    img.positive.push_back(sp.positive());
    img.negative.push_back(sp.negative());
  }
  img.width = state.width;
  img.height = state.height;
  img.die_of = state.die_of;
  return img;
}

LayoutState restore_layout(const LayoutStateImage& image) {
  if (image.positive.size() != image.negative.size())
    throw std::invalid_argument(
        "restore_layout: positive/negative die count mismatch");
  if (image.width.size() != image.height.size() ||
      image.width.size() != image.die_of.size())
    throw std::invalid_argument("restore_layout: module array size mismatch");
  LayoutState s;
  s.die_sp.reserve(image.positive.size());
  for (std::size_t d = 0; d < image.positive.size(); ++d)
    s.die_sp.push_back(
        SequencePair::restore(image.positive[d], image.negative[d]));
  s.width = image.width;
  s.height = image.height;
  s.die_of = image.die_of;
  if (image.tracked) s.init_tracking(s.die_sp.size());
  return s;
}

ChainCheckpoint capture_chain(const AnnealSession& session, const Rng& rng,
                              const CostEvaluator& eval,
                              const thermal::ThermalEngine* engine,
                              const Floorplan3D& fp) {
  if (session.state == nullptr)
    throw std::logic_error("capture_chain: session has no state");
  ChainCheckpoint ck;
  ck.state = capture_layout(*session.state);
  ck.best = capture_layout(session.best);
  ck.current = session.current;
  ck.best_cost = session.best_cost;
  ck.best_legal = session.best_legal;
  ck.initial_outline_weight = session.initial_outline_weight;
  ck.temperature = session.temperature;
  ck.cooling = session.cooling;
  ck.total_moves = session.total_moves;
  ck.moves_per_stage = session.moves_per_stage;
  ck.annealed_stages = session.annealed_stages;
  ck.stage = session.stage;
  ck.since_full = session.since_full;
  ck.since_thermal = session.since_thermal;
  ck.refresh_pending = session.refresh_pending;
  ck.stats = session.stats;
  ck.rng = rng.state();
  ck.eval = eval.checkpoint_state();
  if (engine != nullptr && engine->stats().steady_solves > 0) {
    ck.has_field = true;
    ck.field = engine->save_field();
  }
  ck.voltage_index.reserve(fp.modules().size());
  for (const Module& m : fp.modules())
    ck.voltage_index.push_back(m.voltage_index);
  return ck;
}

void restore_chain(const ChainCheckpoint& ck, AnnealSession& session,
                   LayoutState& state_storage, Rng& rng, CostEvaluator& eval,
                   thermal::ThermalEngine* engine, Floorplan3D& fp) {
  if (ck.voltage_index.size() != fp.modules().size())
    throw std::invalid_argument(
        "restore_chain: checkpoint module count does not match the design");
  for (std::size_t i = 0; i < ck.voltage_index.size(); ++i)
    fp.modules()[i].voltage_index =
        static_cast<std::size_t>(ck.voltage_index[i]);

  eval.restore_checkpoint_state(ck.eval);

  state_storage = restore_layout(ck.state);
  session = AnnealSession{};
  session.state = &state_storage;
  session.current = ck.current;
  session.best = restore_layout(ck.best);
  session.best_cost = ck.best_cost;
  session.best_legal = ck.best_legal;
  session.initial_outline_weight = ck.initial_outline_weight;
  session.temperature = ck.temperature;
  session.cooling = ck.cooling;
  session.total_moves = static_cast<std::size_t>(ck.total_moves);
  session.moves_per_stage = static_cast<std::size_t>(ck.moves_per_stage);
  session.annealed_stages = static_cast<std::size_t>(ck.annealed_stages);
  session.stage = static_cast<std::size_t>(ck.stage);
  session.since_full = static_cast<std::size_t>(ck.since_full);
  session.since_thermal = static_cast<std::size_t>(ck.since_thermal);
  session.refresh_pending = ck.refresh_pending;
  session.stats = ck.stats;

  rng.set_state(ck.rng);
  if (engine != nullptr && ck.has_field) engine->restore_field(ck.field);

  // Publish the restored layout before the first move: the floorplan
  // still holds the design-file positions, and the transactional loop's
  // journal-on-first-touch staging must never capture those as the
  // "pre-move" content.  The fresh tracking family forces a full repack,
  // whose positions are bitwise-identical to the capture-time layout.
  state_storage.apply_to(fp);
}

}  // namespace tsc3d::floorplan
