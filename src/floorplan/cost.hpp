// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Multi-objective floorplanning cost (Sec. 7 setups):
//
//  * power-aware (PA): packing density, wirelength, critical delay, peak
//    temperature, and voltage assignment (overall power + number of
//    volumes), all weighted equally -- the paper's competitive baseline.
//  * TSC-aware: the same criteria PLUS the average Eq.-1 correlation
//    coefficients and the average spatial entropies; the voltage
//    objective switches to volume count + power-gradient uniformity.
//
// Terms are adaptively normalized to the value of the first evaluation so
// the weights express relative importance, as in Corblivar.  Cheap terms
// (packing, outline, wirelength, delay) are evaluated per move; expensive
// terms (voltage assignment, fast thermal, correlation, entropy) are
// refreshed at a configurable cadence (see annealer.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/floorplan.hpp"
#include "leakage/spatial_entropy.hpp"
#include "power/timing.hpp"
#include "power/voltage.hpp"
#include "thermal/power_blur.hpp"
#include "thermal/thermal_engine.hpp"

namespace tsc3d::floorplan {

/// Relative weights of the cost terms.  Zero disables a term.
struct CostWeights {
  double area = 1.0;         ///< packing bounding-box area
  double outline = 8.0;      ///< fixed-outline violation (hard-ish)
  double wirelength = 1.0;
  double delay = 1.0;
  double peak_temp = 1.0;
  double power = 1.0;        ///< overall power after voltage assignment
  double volumes = 1.0;      ///< number of voltage volumes
  double correlation = 0.0;  ///< avg per-die Eq. 1 correlation
  double entropy = 0.0;      ///< avg per-die spatial entropy
  double power_gradient = 0.0;  ///< intra/inter volume density stddev
};

/// The PA setup: all classical criteria weighted equally (Sec. 7 (i)).
[[nodiscard]] CostWeights power_aware_weights();

/// The TSC setup: classical criteria plus leakage terms (Sec. 7 (ii)).
[[nodiscard]] CostWeights tsc_aware_weights();

/// All raw term values of one evaluation.
struct CostBreakdown {
  double bbox_area_ratio = 0.0;   ///< sum of die bbox areas / outline areas
  double outline_penalty = 0.0;   ///< relative overhang beyond the outline
  double wirelength_um = 0.0;
  double delay_ns = 0.0;
  double peak_k_rise = 0.0;       ///< peak temperature above ambient (fast)
  double power_w = 0.0;
  double num_volumes = 0.0;
  double power_gradient = 0.0;
  std::vector<double> correlation;  ///< per die, fast thermal estimate
  std::vector<double> entropy;      ///< per die
  double total = 0.0;
  bool fits_outline = false;
};

/// Evaluator bound to one floorplan database.  The annealer mutates the
/// floorplan (via LayoutState::apply_to) and calls evaluate_*().
class CostEvaluator {
 public:
  struct Options {
    CostWeights weights;
    power::VoltageObjective voltage_objective =
        power::VoltageObjective::power_aware;
    power::TimingOptions timing;
    power::VoltageOptions voltage;
    std::size_t leakage_grid = 32;  ///< fast-analysis grid resolution
    leakage::SpatialEntropyOptions entropy_options;
    /// When set, evaluate_thermal()/evaluate_full() solve the detailed
    /// steady state on this engine (at leakage_grid resolution) instead
    /// of the power-blurring estimate.  The engine's cached assembly and
    /// warm-started solves keep this affordable inside the annealing
    /// loop; the paper's fast-vs-detailed quality gap disappears at the
    /// cost of a few SOR sweeps per refresh.  The engine must outlive the
    /// evaluator and match leakage_grid.
    thermal::ThermalEngine* detailed_engine = nullptr;
    /// Serve the cheap terms from the floorplan's incremental caches
    /// (per-die bounds fed by the packer, per-net HPWL boxes, per-net
    /// Elmore stage delays) instead of rescanning every module and net
    /// per move.  Bitwise-equal to the full recompute as long as layout
    /// writes go through LayoutState::apply_to / note_module_moved (see
    /// floorplan.hpp, "incremental layout tracking"); the cross-check
    /// below guards that invariant.
    bool incremental = true;
    /// Every Nth incremental measure_cheap, recompute the cheap terms
    /// from scratch and throw std::logic_error on any bitwise mismatch
    /// (a mismatch means some code moved modules without announcing it).
    /// 0 disables; defaults on in debug builds.
#ifndef NDEBUG
    std::size_t cross_check_interval = 256;
#else
    std::size_t cross_check_interval = 0;
#endif
  };

  /// `blur` provides the calibrated fast thermal model (32x32 by default).
  CostEvaluator(Floorplan3D& fp, const thermal::PowerBlur& blur,
                Options options);

  /// Cheap terms only; thermal and voltage terms are carried over from
  /// the last refresh (their cached raw values are reused).
  [[nodiscard]] CostBreakdown evaluate_cheap();

  /// Cheap terms + TSV planning + fast thermal + correlation refresh;
  /// voltage-assignment terms stay cached.  Cheap enough to run every
  /// few moves when the setup weights the correlation.
  [[nodiscard]] CostBreakdown evaluate_thermal();

  /// All terms: additionally re-runs the voltage assignment.
  [[nodiscard]] CostBreakdown evaluate_full();

  /// Evaluation depth of one scoring call; the three levels correspond
  /// to evaluate_cheap / evaluate_thermal / evaluate_full.
  enum class EvalLevel { cheap, thermal, full };

  // --- batched scoring ---------------------------------------------------
  // Score k candidate layouts in one call, solving their thermal fields
  // as ONE batched engine call against a shared conductance assembly
  // (frozen to the first staged candidate's TSV arrangement; sibling
  // candidates differ by one annealing move, so their TSV maps are near
  // identical).  Protocol: batch_begin(level, k), then per candidate
  // apply the layout to the floorplan and batch_stage(), then
  // batch_evaluate() for the costs, then batch_adopt(i) with the
  // selected candidate.  After adopt, the evaluator's cached expensive
  // terms and the detailed engine's warm field are exactly what the
  // corresponding evaluate_*() call on candidate i would have left
  // behind -- a batch of one is bitwise-equivalent to the unbatched
  // path (tests/test_batched_eval.cpp asserts it).

  /// Start a batched evaluation at `level` (one active batch at a time).
  void batch_begin(EvalLevel level, std::size_t capacity);
  /// Capture the floorplan's CURRENT layout as the next candidate:
  /// measures the cheap (and, at full level, voltage) terms now and
  /// queues the power/TSV maps for the batched solve.
  void batch_stage();
  /// Solve the staged candidates' thermal terms and return one
  /// breakdown per candidate, in staging order.
  [[nodiscard]] std::vector<CostBreakdown> batch_evaluate();
  /// Install candidate `index`'s expensive-term caches (and warm field,
  /// when a detailed engine is wired) and close the batch.
  void batch_adopt(std::size_t index);
  /// Candidates staged in the active batch.
  [[nodiscard]] std::size_t batch_size() const { return batch_.size(); }

  // --- trial (speculative) evaluation ------------------------------------
  // One bracket around a speculative move (see
  // floorplan/move_transaction.hpp): trial_begin() opens the journaling
  // trial on the floorplan AND the timing engine, so every incremental
  // cache cell the staged move dirties is captured before its first
  // rewrite; trial_rollback() restores them bitwise and trial_commit()
  // drops the journals.  The evaluator's own state needs no journal: the
  // expensive-term caches are refresh-cadence state that a rejected move
  // leaves untouched in the classic loop too, and the per-die layout-term
  // cache below is keyed on the cached bounds VALUES, so it self-heals
  // after a rollback.  Trials do not nest and cannot overlap a batch
  // bracket's begin (batched staging runs each candidate inside its own
  // trial -- trial around batch_stage is the supported composition).

  /// Open the speculative bracket (floorplan + timing journaling on).
  void trial_begin();
  /// Keep the staged move: drop the journals.
  void trial_commit();
  /// Reject the staged move: restore every journaled cache cell bitwise.
  void trial_rollback();
  /// True while a trial bracket is open.
  [[nodiscard]] bool in_trial() const;

  [[nodiscard]] const Options& options() const { return opt_; }

  // --- checkpointing ------------------------------------------------------
  // The evaluator state a resumed annealing session must carry to stay
  // bitwise-identical to an uninterrupted run: the adaptive normalizers
  // (frozen at the first full evaluation), the cached raw values of the
  // expensive terms between refreshes, the escalated outline weight, and
  // the cross-check cadence counter.  The value-keyed per-die layout-term
  // cache is deliberately absent -- it self-heals from the repacked
  // bounds with identical arithmetic.

  /// Everything restore_checkpoint_state() needs (see above).
  struct CheckpointState {
    double outline_weight = 0.0;
    double peak_rise = 0.0, power = 0.0, volumes = 0.0, gradient = 0.0;
    std::vector<double> correlation, entropy;
    bool have_expensive = false;
    std::uint64_t cheap_evals = 0;
    double norm_area = 1.0, norm_wl = 1.0, norm_delay = 1.0, norm_peak = 1.0,
           norm_power = 1.0, norm_volumes = 1.0, norm_corr = 1.0,
           norm_entropy = 1.0, norm_gradient = 1.0;
    bool norm_ready = false;
  };

  /// Snapshot the resumable state.  Throws std::logic_error while a
  /// batch or trial bracket is open (checkpoints live at stage
  /// boundaries, never mid-bracket).
  [[nodiscard]] CheckpointState checkpoint_state() const;
  /// Restore a snapshot taken by checkpoint_state().  Same bracket rule.
  void restore_checkpoint_state(const CheckpointState& st);

  /// Forward a tolerance-schedule scale to the detailed in-loop engine
  /// (no-op on the power-blurring path): subsequent thermal solves stop
  /// at tolerance_k * max(1, scale).  The annealer drives this per step
  /// -- coarse solves while the search is hot and the proposed move is
  /// large, full accuracy toward convergence -- while verification
  /// engines (owned elsewhere) always keep scale 1.
  void set_thermal_tolerance_scale(double scale);

  /// Current fixed-outline violation weight.  The annealer escalates it
  /// when the search lingers in illegal (overhanging) regions of the
  /// space -- the standard fixed-outline SA remedy.
  [[nodiscard]] double outline_weight() const { return opt_.weights.outline; }
  /// Multiply the outline weight.  Safe between evaluations because
  /// combine() applies the weights fresh on every call and every raw-term
  /// cache in this class stores weight-INDEPENDENT values -- no cache
  /// invalidation is needed.  Throws std::logic_error while a batch or a
  /// trial bracket is open: staged candidates were priced under the old
  /// weight and mixing weights within one comparison set is a bug.
  void scale_outline_weight(double factor);

 private:
  /// One staged candidate of an active batch.
  struct BatchCandidate {
    CostBreakdown c;
    std::vector<GridD> power_maps;  ///< per die, at leakage_grid
    GridD tsv_map;
  };

  void measure_cheap(CostBreakdown& c);
  /// The cheap layout terms (bbox/outline, wirelength, delay) by full
  /// rescan -- the seed path, kept verbatim as the incremental path's
  /// reference.
  void measure_layout_terms_full(CostBreakdown& c) const;
  /// The same terms from the incremental caches; bitwise-equal to the
  /// full rescan under the tracking invariant.
  void measure_layout_terms_incremental(CostBreakdown& c);
  void measure_thermal(CostBreakdown& c);
  void measure_voltage(CostBreakdown& c);
  /// measure_voltage without the cache update (batched staging defers
  /// cache installation to batch_adopt).
  void measure_voltage_raw(CostBreakdown& c);
  [[nodiscard]] double combine(const CostBreakdown& c) const;
  void init_normalizers(const CostBreakdown& c);

  Floorplan3D& fp_;
  const thermal::PowerBlur& blur_;
  Options opt_;
  /// Net topology is static during annealing; the timing engine is built
  /// once and reads module positions live.
  power::ElmoreTiming timing_;

  std::size_t cheap_evals_ = 0;  ///< cross-check cadence counter

  // --- delta-form per-die layout terms (see measure_layout_terms_... ) --
  // The area and outline contributions of each die, cached against the
  // die bounds they were derived from.  A move touches one or two dies;
  // the untouched dies' bounds come back bitwise-identical from
  // die_bounds(), so their terms are reused and only the touched dies
  // re-run the (identical) arithmetic.  Keyed on VALUES (bounds + the
  // fixed outline), not on epochs, so the cache is self-healing under
  // trial rollback -- a restored bound simply hits again.
  struct DieTermCache {
    double width = -1.0, height = -1.0;  ///< bounds the entry was built from
    double area_ratio = 0.0;             ///< (w * h) / outline area
    double over_w = 0.0, over_h = 0.0;   ///< relative outline overhang
  };
  std::vector<DieTermCache> die_terms_;
  double die_terms_outline_w_ = -1.0;  ///< outline the cache was built for
  double die_terms_outline_h_ = -1.0;

  // Cached raw values of the expensive terms between refreshes.
  double cached_peak_rise_ = 0.0;
  double cached_power_ = 0.0;
  double cached_volumes_ = 0.0;
  double cached_gradient_ = 0.0;
  std::vector<double> cached_correlation_;
  std::vector<double> cached_entropy_;
  bool have_expensive_ = false;

  // Active batched evaluation (see batch_begin).
  std::vector<BatchCandidate> batch_;
  EvalLevel batch_level_ = EvalLevel::cheap;
  bool batch_active_ = false;
  bool batch_evaluated_ = false;

  // Adaptive normalizers (value of the first full evaluation).
  struct Normalizers {
    double area = 1.0, wl = 1.0, delay = 1.0, peak = 1.0, power = 1.0,
           volumes = 1.0, corr = 1.0, entropy = 1.0, gradient = 1.0;
    bool ready = false;
  } norm_;
};

}  // namespace tsc3d::floorplan
