#include "floorplan/annealer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "floorplan/move_transaction.hpp"

namespace tsc3d::floorplan {

LayoutState LayoutState::initial(const Floorplan3D& fp, Rng& rng,
                                 bool hot_modules_to_top) {
  const std::size_t n = fp.modules().size();
  const std::size_t dies = fp.tech().num_dies;
  LayoutState s;
  s.width.resize(n);
  s.height.resize(n);
  s.die_of.resize(n);

  // Initial extents: nominal aspect ratio in the middle of the range.
  for (std::size_t i = 0; i < n; ++i) {
    const Module& m = fp.modules()[i];
    const double ar =
        m.soft ? std::sqrt(m.min_aspect * m.max_aspect) : m.min_aspect;
    s.width[i] = std::sqrt(m.area_um2 * std::max(ar, 1e-9));
    s.height[i] = m.area_um2 / s.width[i];
  }

  // Die assignment: the thermal design rule sends the hotter half of the
  // modules (by power density) to the top die (index dies-1, adjacent to
  // the heatsink); the rest go below, round-robin for stacks > 2.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  if (hot_modules_to_top) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const auto da = fp.modules()[a].power_w / fp.modules()[a].area_um2;
      const auto db = fp.modules()[b].power_w / fp.modules()[b].area_um2;
      return da > db;
    });
  } else {
    rng.shuffle(order);
  }
  std::vector<std::vector<std::size_t>> members(dies);
  // Balance module *area* across dies while walking the (hot-first) order.
  std::vector<double> die_area(dies, 0.0);
  for (const std::size_t i : order) {
    std::size_t target = 0;
    if (hot_modules_to_top) {
      // Prefer the topmost die that is still below average fill.
      target = dies - 1;
      for (std::size_t d = dies; d > 0; --d) {
        if (die_area[d - 1] <=
            *std::min_element(die_area.begin(), die_area.end()) + 1e-9) {
          target = d - 1;
          break;
        }
      }
    } else {
      target = static_cast<std::size_t>(
          std::min_element(die_area.begin(), die_area.end()) -
          die_area.begin());
    }
    members[target].push_back(i);
    die_area[target] += fp.modules()[i].area_um2;
    s.die_of[i] = target;
  }

  for (std::size_t d = 0; d < dies; ++d) {
    SequencePair sp(members[d]);
    sp.shuffle(rng);
    s.die_sp.push_back(std::move(sp));
  }
  s.init_tracking(dies);
  return s;
}

void LayoutState::init_tracking(std::size_t dies) {
  // Family ids are process-unique so stamps from one family can never
  // match another family's writes; copies share the id AND the counter,
  // so every version value is handed out exactly once per family.
  static std::atomic<std::uint64_t> next_family{1};
  family = next_family.fetch_add(1, std::memory_order_relaxed);
  version_counter = std::make_shared<std::atomic<std::uint64_t>>(0);
  die_version.assign(dies, 0);
  packing_cache.assign(dies, Packing{});
  packing_version.assign(dies, 0);
  for (std::size_t d = 0; d < dies; ++d) touch_die(d);
}

void LayoutState::touch_die(std::size_t d) {
  if (version_counter == nullptr || d >= die_version.size()) return;
  die_version[d] =
      version_counter->fetch_add(1, std::memory_order_relaxed) + 1;
}

void LayoutState::disable_tracking() {
  family = 0;
  version_counter.reset();
  die_version.clear();
  packing_cache.clear();
  packing_version.clear();
}

void LayoutState::apply_to(Floorplan3D& fp) const {
  const bool use_stamps =
      tracked() && die_version.size() == die_sp.size();
  for (std::size_t d = 0; d < die_sp.size(); ++d) {
    if (use_stamps && fp.layout_stamp_matches(d, family, die_version[d]))
      continue;  // fp already holds exactly this die content, bitwise
    const SequencePair& sp = die_sp[d];
    const bool cache_ok = use_stamps && d < packing_version.size() &&
                          packing_version[d] == die_version[d];
    if (!cache_ok) {
      if (packing_cache.size() != die_sp.size()) {
        packing_cache.assign(die_sp.size(), Packing{});
        packing_version.assign(die_sp.size(), 0);
      }
      packing_cache[d] =
          sp.pack([&](std::size_t id) { return width[id]; },
                  [&](std::size_t id) { return height[id]; });
      packing_version[d] = use_stamps ? die_version[d] : 0;
    }
    const Packing& p = packing_cache[d];
    const auto& order = sp.members();
    for (std::size_t k = 0; k < order.size(); ++k) {
      Module& m = fp.modules()[order[k]];
      // Announce the write only when a value actually changes: a repack
      // typically moves few of the die's modules, and unchanged modules
      // leave their incident nets' cached boxes exact.
      const bool die_changed = m.die != d;
      const bool changed =
          die_changed || m.shape.x != p.position[k].x ||
          m.shape.y != p.position[k].y || m.shape.w != width[order[k]] ||
          m.shape.h != height[order[k]];
      // Under a trial bracket, journal the module's pre-move shape/die
      // before the first write so a rollback can restore it bitwise
      // (unchanged modules rewrite identical values and need no journal).
      if (changed && fp.in_trial()) fp.trial_save_module(order[k]);
      m.die = d;
      m.shape.x = p.position[k].x;
      m.shape.y = p.position[k].y;
      m.shape.w = width[order[k]];
      m.shape.h = height[order[k]];
      if (changed) fp.note_module_moved(order[k], die_changed);
    }
    // The packer's bounding box equals the module scan bitwise (max over
    // the same right/top values), so the outline term can reuse it.
    fp.set_die_bounds(d, p.width, p.height);
    if (use_stamps) fp.set_layout_stamp(d, family, die_version[d]);
  }
}

Annealer::Annealer(Floorplan3D& fp, CostEvaluator& evaluator,
                   AnnealOptions options)
    : fp_(fp), eval_(evaluator), opt_(options) {}

double Annealer::move_size_factor(const MoveRecord& rec) {
  // Thermal reach of a move: how far the power map can shift.  A resize
  // nudges one module's footprint, an intra-die swap relocates one or
  // two modules within a die, a transfer moves a module's whole power
  // budget to another die, and an exchange does that twice.
  switch (rec.kind) {
    case MoveRecord::Kind::resize:
      return 0.25;
    case MoveRecord::Kind::swap_pos:
    case MoveRecord::Kind::swap_neg:
    case MoveRecord::Kind::swap_both:
      return 0.5;
    case MoveRecord::Kind::transfer:
      return 0.75;
    case MoveRecord::Kind::exchange:
      return 1.0;
    case MoveRecord::Kind::none:
      break;
  }
  return 0.0;
}

bool Annealer::use_transactions(const LayoutState& state) const {
  // Transactions lean on the incremental machinery: rollback restores
  // journaled cache cells and the state's die versions so the floorplan
  // stamps keep matching.  Without tracking or incremental caches there
  // is nothing to skip, and the classic loops are the honest baseline.
  return opt_.transactional && eval_.options().incremental && state.tracked();
}

void Annealer::apply_tolerance_schedule(const AnnealSession& s,
                                        double move_factor) {
  if (opt_.inner_tolerance_scale <= 1.0) return;  // schedule disabled
  const double t0 = s.stats.initial_temperature;
  const double ratio =
      t0 > 0.0 ? std::clamp(s.temperature / t0, 0.0, 1.0) : 0.0;
  // sqrt: the geometric cooling collapses T/T0 within a few stages, long
  // before the search stops making K-scale moves; the square root keeps
  // the coarse-solve regime through the hot half of the schedule while
  // still converging to scale 1 in the endgame.
  eval_.set_thermal_tolerance_scale(
      1.0 +
      (opt_.inner_tolerance_scale - 1.0) * std::sqrt(ratio) * move_factor);
}

void Annealer::random_move(LayoutState& s, Rng& rng, MoveRecord& rec) const {
  const std::size_t dies = s.die_sp.size();
  rec.kind = MoveRecord::Kind::none;
  const double roll = rng.uniform();

  if (roll < opt_.resize_prob) {
    // Resize a soft module / rotate a hard one.
    const std::size_t id = rng.index(s.width.size());
    const Module& m = fp_.modules()[id];
    rec.kind = MoveRecord::Kind::resize;
    rec.module_a = id;
    rec.old_w = s.width[id];
    rec.old_h = s.height[id];
    if (m.soft && m.max_aspect > m.min_aspect) {
      const double ar = rng.uniform(m.min_aspect, m.max_aspect);
      s.width[id] = std::sqrt(m.area_um2 * ar);
      s.height[id] = m.area_um2 / s.width[id];
    } else {
      std::swap(s.width[id], s.height[id]);
    }
    rec.new_w = s.width[id];
    rec.new_h = s.height[id];
    s.touch_die(s.die_of[id]);
    return;
  }
  if (dies > 1 && roll < opt_.resize_prob + opt_.transfer_prob) {
    // Transfer one module to another die.
    const std::size_t id = rng.index(s.die_of.size());
    const std::size_t from = s.die_of[id];
    if (s.die_sp[from].size() > 1) {
      std::size_t to = rng.index(dies - 1);
      if (to >= from) ++to;
      // Remember the module's slots for the revert.
      const auto& pos = s.die_sp[from].positive();
      const auto& neg = s.die_sp[from].negative();
      rec.old_pos_slot = static_cast<std::size_t>(
          std::find(pos.begin(), pos.end(), id) - pos.begin());
      rec.old_neg_slot = static_cast<std::size_t>(
          std::find(neg.begin(), neg.end(), id) - neg.begin());
      rec.kind = MoveRecord::Kind::transfer;
      rec.module_a = id;
      rec.die_a = from;
      rec.die_b = to;
      s.die_sp[from].remove(id);
      // The in-argument assignments capture the drawn slots for replay()
      // without touching the argument evaluation order the unbatched
      // move stream was calibrated against.
      s.die_sp[to].insert(id,
                          rec.ins_pos = rng.index(s.die_sp[to].size() + 1),
                          rec.ins_neg = rng.index(s.die_sp[to].size() + 1));
      s.die_of[id] = to;
      s.touch_die(from);
      s.touch_die(to);
      return;
    }
  }
  if (dies > 1 &&
      roll < opt_.resize_prob + opt_.transfer_prob + opt_.exchange_prob) {
    // Exchange two modules across dies.
    const std::size_t a = rng.index(s.die_of.size());
    const std::size_t b = rng.index(s.die_of.size());
    if (s.die_of[a] != s.die_of[b]) {
      const std::size_t da = s.die_of[a];
      const std::size_t db = s.die_of[b];
      rec.kind = MoveRecord::Kind::exchange;
      rec.module_a = a;
      rec.module_b = b;
      rec.die_a = da;
      rec.die_b = db;
      auto slot = [](const std::vector<std::size_t>& seq, std::size_t id) {
        return static_cast<std::size_t>(
            std::find(seq.begin(), seq.end(), id) - seq.begin());
      };
      rec.old_pos_slot = slot(s.die_sp[da].positive(), a);
      rec.old_neg_slot = slot(s.die_sp[da].negative(), a);
      rec.old_pos_slot_b = slot(s.die_sp[db].positive(), b);
      rec.old_neg_slot_b = slot(s.die_sp[db].negative(), b);
      s.die_sp[da].remove(a);
      s.die_sp[db].remove(b);
      s.die_sp[db].insert(a,
                          rec.ins_pos = rng.index(s.die_sp[db].size() + 1),
                          rec.ins_neg = rng.index(s.die_sp[db].size() + 1));
      s.die_sp[da].insert(b,
                          rec.ins_pos_b = rng.index(s.die_sp[da].size() + 1),
                          rec.ins_neg_b = rng.index(s.die_sp[da].size() + 1));
      s.die_of[a] = db;
      s.die_of[b] = da;
      s.touch_die(da);
      s.touch_die(db);
      return;
    }
  }

  // Intra-die sequence swap (positive, negative, or both).
  const std::size_t d = rng.index(dies);
  SequencePair& sp = s.die_sp[d];
  if (sp.size() < 2) return;
  const std::size_t i = rng.index(sp.size());
  std::size_t j = rng.index(sp.size() - 1);
  if (j >= i) ++j;
  rec.die_a = d;
  switch (rng.index(3)) {
    case 0:
      rec.kind = MoveRecord::Kind::swap_pos;
      rec.slot_i = i;
      rec.slot_j = j;
      sp.swap_positive(i, j);
      break;
    case 1:
      rec.kind = MoveRecord::Kind::swap_neg;
      rec.slot_i = i;
      rec.slot_j = j;
      sp.swap_negative(i, j);
      break;
    default:
      rec.kind = MoveRecord::Kind::swap_both;
      rec.module_a = sp.positive()[i];
      rec.module_b = sp.positive()[j];
      sp.swap_both(rec.module_a, rec.module_b);
      break;
  }
  s.touch_die(d);
}

AnnealStats Annealer::run(LayoutState& state, Rng& rng) {
  AnnealSession session = begin(state, rng);
  while (run_stage(session, rng)) {
  }
  return finish(session, rng);
}

AnnealSession Annealer::begin(LayoutState& state, Rng& rng) {
  AnnealSession s;
  s.state = &state;
  state.apply_to(fp_);
  eval_.set_thermal_tolerance_scale(1.0);  // authoritative baseline eval
  s.current = eval_.evaluate_full();
  ++s.stats.full_evals;

  // Calibrate T0 so that `initial_accept` of random uphill moves pass.
  // The probe walk accumulates moves on a scratch copy, so each move's
  // uphill delta must be measured against the cost of the walk's previous
  // state -- not the initial cost, which goes stale as the walk drifts
  // and would bias T0 toward the (larger) total drift.
  {
    std::vector<double> uphill;
    LayoutState probe = state;
    double prev_total = s.current.total;
    for (std::size_t k = 0; k < 60; ++k) {
      MoveRecord rec;
      random_move(probe, rng, rec);
      if (rec.kind == MoveRecord::Kind::none) continue;
      probe.apply_to(fp_);
      const CostBreakdown c = eval_.evaluate_cheap();
      const double delta = c.total - prev_total;
      if (delta > 0.0) uphill.push_back(delta);
      prev_total = c.total;
    }
    state.apply_to(fp_);  // restore the floorplan to the starting layout
    const double avg =
        uphill.empty()
            ? 0.1
            : std::accumulate(uphill.begin(), uphill.end(), 0.0) /
                  static_cast<double>(uphill.size());
    s.stats.initial_temperature = -avg / std::log(opt_.initial_accept);
  }

  s.best = state;
  s.best_cost = s.current;
  s.best_legal = s.current.fits_outline;
  s.stats.found_legal = s.best_legal;
  s.initial_outline_weight = eval_.outline_weight();

  s.temperature = s.stats.initial_temperature;
  s.total_moves =
      opt_.total_moves > 0
          ? opt_.total_moves
          : 8000 + 150 * fp_.modules().size();  // auto-scaled budget
  s.moves_per_stage =
      std::max<std::size_t>(1, s.total_moves / std::max<std::size_t>(
                                                   1, opt_.stages));

  // Cooling factor: either explicit or derived so that the temperature
  // reaches final_temp_ratio * T0 at the end of the annealed stages.
  const auto greedy_stages = static_cast<std::size_t>(
      opt_.greedy_tail * static_cast<double>(opt_.stages));
  s.annealed_stages =
      opt_.stages > greedy_stages ? opt_.stages - greedy_stages : 1;
  s.cooling =
      opt_.cooling > 0.0
          ? opt_.cooling
          : std::pow(opt_.final_temp_ratio,
                     1.0 / static_cast<double>(s.annealed_stages));
  return s;
}

void Annealer::stage_refresh(AnnealSession& s) {
  // A tempering exchange replaced the state: re-apply it and refresh the
  // carried cost (the evaluator's cached expensive terms belong to the
  // state that was swapped away).
  if (!s.refresh_pending) return;
  LayoutState& state = *s.state;
  state.apply_to(fp_);
  eval_.set_thermal_tolerance_scale(1.0);  // rebase exchanges exactly
  s.current = eval_.evaluate_full();
  ++s.stats.full_evals;
  s.since_full = 0;
  s.since_thermal = 0;
  s.refresh_pending = false;
  // The exchanged-in layout may beat everything this chain has seen
  // (and its donor gave it away); fold it into the best tracking now,
  // or a subsequent accepted uphill move would lose it for good.
  track_best(s, s.current);
}

void Annealer::track_best(AnnealSession& s, const CostBreakdown& c) {
  // Legal (outline-fitting) states always dominate illegal ones.
  const bool better =
      (c.fits_outline && !s.best_legal) ||
      (c.fits_outline == s.best_legal && c.total < s.best_cost.total);
  if (better) {
    s.best = *s.state;
    s.best_cost = c;
    s.best_legal = c.fits_outline;
    s.stats.found_legal = s.stats.found_legal || c.fits_outline;
  }
}

void Annealer::stage_cool_and_escalate(AnnealSession& s) {
  LayoutState& state = *s.state;
  s.temperature *= s.cooling;

  // Fixed-outline pressure: if this stage ends outside the outline (or
  // no legal state has been seen at all), raise the violation weight so
  // the remaining stages prioritize legality.  Totals are re-derived
  // under the new weight so comparisons stay consistent.
  if (opt_.outline_escalation > 1.0 &&
      (!s.current.fits_outline || !s.best_legal) &&
      eval_.outline_weight() <
          s.initial_outline_weight * opt_.outline_cap_factor) {
    eval_.scale_outline_weight(opt_.outline_escalation);
    state.apply_to(fp_);
    s.current = eval_.evaluate_cheap();
    if (!s.best_legal) {
      s.best.apply_to(fp_);
      s.best_cost = eval_.evaluate_cheap();
      state.apply_to(fp_);
    }
  }
  ++s.stage;
}

CostBreakdown Annealer::evaluate_move(AnnealSession& s, double move_factor) {
  // The full/thermal/cheap cadence of the one-move-per-step loops; the
  // transactional and classic branches share it so the refresh points --
  // and therefore the measured values -- land move-for-move identically.
  CostBreakdown c;
  ++s.since_thermal;
  if (++s.since_full >= opt_.full_eval_interval) {
    apply_tolerance_schedule(s, move_factor);
    c = eval_.evaluate_full();
    s.since_full = 0;
    s.since_thermal = 0;
    ++s.stats.full_evals;
  } else if (opt_.thermal_eval_interval > 0 &&
             s.since_thermal >= opt_.thermal_eval_interval) {
    apply_tolerance_schedule(s, move_factor);
    c = eval_.evaluate_thermal();
    s.since_thermal = 0;
    ++s.stats.full_evals;
  } else {
    c = eval_.evaluate_cheap();
  }
  return c;
}

bool Annealer::run_stage(AnnealSession& s, Rng& rng) {
  if (opt_.batch_candidates > 1)
    return run_stage_batched(s, rng, opt_.batch_candidates);
  if (s.stage >= opt_.stages) return false;
  LayoutState& state = *s.state;
  stage_refresh(s);

  const bool greedy = s.stage >= s.annealed_stages;
  if (use_transactions(state)) {
    // Transactional loop: speculatively stage the move, evaluate, then
    // commit or roll back.  A rollback restores every journaled cache
    // cell AND the state's die versions, so the floorplan stamps still
    // match and the next move's apply_to() skips the rejected move's
    // dies outright -- the classic loop re-packs them on the next
    // apply_to just to rediscover the old positions.
    MoveTransaction txn(fp_, eval_);
    for (std::size_t mv = 0; mv < s.moves_per_stage; ++mv) {
      txn.open(state);
      MoveRecord rec;
      random_move(state, rng, rec);
      if (rec.kind == MoveRecord::Kind::none) {
        txn.abort();
        continue;
      }
      ++s.stats.moves;

      txn.stage();
      const CostBreakdown c = evaluate_move(s, move_size_factor(rec));

      const double delta = c.total - s.current.total;
      const bool accept =
          delta <= 0.0 ||
          (!greedy && rng.uniform() < std::exp(-delta / s.temperature));
      if (accept) {
        txn.commit();
        ++s.stats.accepted;
        s.current = c;
        track_best(s, c);
      } else {
        txn.rollback(rec);
      }
    }
  } else {
    for (std::size_t mv = 0; mv < s.moves_per_stage; ++mv) {
      MoveRecord rec;
      random_move(state, rng, rec);
      if (rec.kind == MoveRecord::Kind::none) continue;
      ++s.stats.moves;

      state.apply_to(fp_);
      const CostBreakdown c = evaluate_move(s, move_size_factor(rec));

      const double delta = c.total - s.current.total;
      const bool accept =
          delta <= 0.0 ||
          (!greedy && rng.uniform() < std::exp(-delta / s.temperature));
      if (accept) {
        ++s.stats.accepted;
        s.current = c;
        track_best(s, c);
      } else {
        rec.revert(state);
      }
    }
  }
  stage_cool_and_escalate(s);
  return true;
}

void Annealer::batched_step(AnnealSession& s, Rng& rng, std::size_t want,
                            bool greedy) {
  LayoutState& state = *s.state;
  const bool txn_path = use_transactions(state);

  // --- propose: k independent alternatives to the current state --------
  // Each move is proposed against the same base state and immediately
  // taken back, so the proposal RNG stream matches the unbatched path
  // move for move.  The classic path snapshots a full LayoutState copy
  // per candidate; the transactional path keeps only the MoveRecord
  // (replayed below) and restores content AND die versions in place --
  // k lightweight records instead of k deep copies.
  std::vector<LayoutState> candidates;  // classic path only
  std::vector<MoveRecord> recs;         // transactional path only
  double batch_move_factor = 0.0;
  if (txn_path) {
    recs.reserve(want);
    const std::vector<std::uint64_t> base_versions = state.die_version;
    for (std::size_t j = 0; j < want; ++j) {
      MoveRecord rec;
      random_move(state, rng, rec);
      if (rec.kind == MoveRecord::Kind::none) continue;
      ++s.stats.moves;
      batch_move_factor = std::max(batch_move_factor, move_size_factor(rec));
      rec.revert_slots(state);
      state.die_version = base_versions;
      recs.push_back(rec);
    }
  } else {
    candidates.reserve(want);
    for (std::size_t j = 0; j < want; ++j) {
      MoveRecord rec;
      random_move(state, rng, rec);
      if (rec.kind == MoveRecord::Kind::none) continue;
      ++s.stats.moves;
      candidates.push_back(state);
      // One batched solve scores all candidates, so the schedule follows
      // the widest-reaching move of the batch (max == the move's own
      // factor at b == 1, keeping the k=1 path bitwise-identical).
      batch_move_factor = std::max(batch_move_factor, move_size_factor(rec));
      rec.revert(state);
    }
  }
  const std::size_t b = txn_path ? recs.size() : candidates.size();
  if (b == 0) return;

  // --- pick the evaluation level for the whole batch --------------------
  // The cadence counters advance by the batch size, so refreshes land at
  // the same per-proposal rate as the unbatched loop; every candidate of
  // a refresh step is evaluated at the refresh level.
  s.since_thermal += b;
  s.since_full += b;
  CostEvaluator::EvalLevel level = CostEvaluator::EvalLevel::cheap;
  if (s.since_full >= opt_.full_eval_interval) {
    level = CostEvaluator::EvalLevel::full;
    s.since_full = 0;
    s.since_thermal = 0;
    s.stats.full_evals += b;
  } else if (opt_.thermal_eval_interval > 0 &&
             s.since_thermal >= opt_.thermal_eval_interval) {
    level = CostEvaluator::EvalLevel::thermal;
    s.since_thermal = 0;
    s.stats.full_evals += b;
  }

  // --- score all candidates in one evaluator batch ----------------------
  if (level != CostEvaluator::EvalLevel::cheap)
    apply_tolerance_schedule(s, batch_move_factor);
  eval_.batch_begin(level, b);
  if (txn_path) {
    // Stage each proposal inside its own trial bracket: replay the move
    // on the base state, publish it, capture the candidate's terms/maps,
    // then roll everything back.  Each trial re-packs only its own
    // move's dies (the classic path re-packs every die the PREVIOUS
    // candidate touched as well, since the floorplan still holds it).
    MoveTransaction txn(fp_, eval_);
    for (const MoveRecord& rec : recs) {
      txn.open(state);
      rec.replay(state);
      txn.stage();
      eval_.batch_stage();
      txn.rollback(rec);
    }
  } else {
    for (const LayoutState& candidate : candidates) {
      candidate.apply_to(fp_);
      eval_.batch_stage();
    }
  }
  const std::vector<CostBreakdown> costs = eval_.batch_evaluate();

  // --- Metropolis over the batch, first accepted candidate wins ---------
  // Candidates are alternatives to ONE base state, so at most one can be
  // applied; walking them in proposal order and consuming acceptance
  // randomness exactly like the unbatched loop keeps the step
  // deterministic per seed (and bitwise-identical at b == 1).
  std::size_t adopted = b - 1;  // engine warm field on no acceptance
  for (std::size_t j = 0; j < b; ++j) {
    const double delta = costs[j].total - s.current.total;
    const bool accept =
        delta <= 0.0 ||
        (!greedy && rng.uniform() < std::exp(-delta / s.temperature));
    if (!accept) continue;
    ++s.stats.accepted;
    if (txn_path) {
      // Re-apply the winning proposal from its record (no randomness);
      // the floorplan still holds the base layout and syncs on the next
      // apply_to, exactly like the classic path defers its sync.
      recs[j].replay(state);
    } else {
      state = std::move(candidates[j]);
    }
    s.current = costs[j];
    track_best(s, costs[j]);
    adopted = j;
    break;
  }
  eval_.batch_adopt(adopted);
}

bool Annealer::run_stage_batched(AnnealSession& s, Rng& rng, std::size_t k) {
  if (k == 0) k = 1;
  if (s.stage >= opt_.stages) return false;
  stage_refresh(s);

  const bool greedy = s.stage >= s.annealed_stages;
  for (std::size_t mv = 0; mv < s.moves_per_stage; mv += k)
    batched_step(s, rng, std::min(k, s.moves_per_stage - mv), greedy);
  stage_cool_and_escalate(s);
  return true;
}

AnnealStats Annealer::finish(AnnealSession& s, Rng& rng) {
  LayoutState& state = *s.state;

  // Greedy legalization: if annealing never met the fixed outline, spend
  // a budgeted tail of moves accepting only outline improvements (ties
  // broken by total cost).  This mirrors the repair passes of
  // fixed-outline floorplanners; the paper's problem statement makes the
  // outline hard ("The resulting die outlines are fixed", Sec. 7).
  if (!s.best_legal && opt_.repair_fraction > 0.0) {
    state = s.best;
    state.apply_to(fp_);
    CostBreakdown repair_current = eval_.evaluate_cheap();
    const auto repair_budget = static_cast<std::size_t>(
        opt_.repair_fraction * static_cast<double>(s.total_moves));
    if (use_transactions(state)) {
      MoveTransaction txn(fp_, eval_);
      for (std::size_t mv = 0;
           mv < repair_budget && !repair_current.fits_outline; ++mv) {
        txn.open(state);
        MoveRecord rec;
        random_move(state, rng, rec);
        if (rec.kind == MoveRecord::Kind::none) {
          txn.abort();
          continue;
        }
        ++s.stats.repair_moves;
        txn.stage();
        const CostBreakdown c = eval_.evaluate_cheap();
        const bool better =
            c.outline_penalty < repair_current.outline_penalty - 1e-12 ||
            (c.outline_penalty < repair_current.outline_penalty + 1e-12 &&
             c.total < repair_current.total);
        if (better) {
          txn.commit();
          repair_current = c;
        } else {
          txn.rollback(rec);
        }
      }
    } else {
      for (std::size_t mv = 0;
           mv < repair_budget && !repair_current.fits_outline; ++mv) {
        MoveRecord rec;
        random_move(state, rng, rec);
        if (rec.kind == MoveRecord::Kind::none) continue;
        ++s.stats.repair_moves;
        state.apply_to(fp_);
        const CostBreakdown c = eval_.evaluate_cheap();
        const bool better =
            c.outline_penalty < repair_current.outline_penalty - 1e-12 ||
            (c.outline_penalty < repair_current.outline_penalty + 1e-12 &&
             c.total < repair_current.total);
        if (better) {
          repair_current = c;
        } else {
          rec.revert(state);
        }
      }
    }
    if (repair_current.fits_outline ||
        repair_current.outline_penalty < s.best_cost.outline_penalty) {
      s.best = state;
      s.best_cost = repair_current;
      s.best_legal = repair_current.fits_outline;
      s.stats.found_legal = s.stats.found_legal || s.best_legal;
    }
  }

  state = std::move(s.best);
  state.apply_to(fp_);
  if (opt_.inner_tolerance_scale > 1.0 &&
      eval_.options().detailed_engine != nullptr) {
    // The tracked best may have been scored under a loosened tolerance
    // (an under-converged solve can flatter a candidate), and the
    // tempering orchestrator compares best breakdowns ACROSS chains.
    // The install is an authoritative evaluation: re-measure the final
    // state at scale 1 so the reported best never carries schedule
    // noise.  No RNG is consumed, so move streams are unaffected.
    eval_.set_thermal_tolerance_scale(1.0);
    s.best_cost = eval_.evaluate_full();
    ++s.stats.full_evals;
  }
  s.stats.best_cost = s.best_cost.total;
  s.stats.best_breakdown = s.best_cost;
  return s.stats;
}

}  // namespace tsc3d::floorplan
