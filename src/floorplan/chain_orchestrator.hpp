// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// ChainOrchestrator: parallel-tempering simulated annealing.  K
// independent chains anneal the same design from the same initial state,
// each on its own Floorplan3D copy with its own ThermalEngine, PowerBlur,
// CostEvaluator, Annealer, and a deterministic per-chain RNG stream.
// Chain k runs at temperature ladder_k * T0_k where the ladder rises
// geometrically from 1 (coldest chain) to `ladder_ratio` (hottest); every
// `exchange_interval` stages, adjacent ladder neighbors propose to swap
// their layouts with the standard replica-exchange Metropolis rule
//
//   P(accept) = min(1, exp((1/T_cold - 1/T_hot) * (E_cold - E_hot))),
//
// so good layouts drift toward the cold chain while hot chains keep
// exploring -- exactly the fig2-style design-space exploration workload
// the paper runs over its Table 1 designs, spread over the machine's
// cores.
//
// Determinism: chains only touch chain-local state between exchange
// barriers, exchanges walk the ladder pairs in a fixed order with a
// dedicated exchange RNG, and all chain seeds derive from the single
// caller seed -- so the result is a pure function of (floorplan, initial
// state, seed), independent of thread scheduling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/floorplan.hpp"
#include "core/rng.hpp"
#include "floorplan/annealer.hpp"
#include "floorplan/cost.hpp"
#include "thermal/thermal_engine.hpp"

namespace tsc3d::floorplan {

/// Parallel-tempering configuration.
struct ChainOptions {
  /// Number of annealing chains; 1 falls back to a single plain SA run.
  std::size_t chains = 1;
  /// Stages between exchange rounds (each chain runs this many stages,
  /// then the orchestrator proposes ladder-neighbor swaps).
  std::size_t exchange_interval = 4;
  /// Temperature multiplier of the hottest chain relative to the coldest.
  double ladder_ratio = 6.0;
  /// Run chains on their own threads (false = sequential round-robin,
  /// same results; useful for debugging and sanitizer isolation).
  bool parallel = true;
};

/// Replica-exchange bookkeeping.
struct ExchangeStats {
  std::size_t rounds = 0;
  std::size_t attempts = 0;
  std::size_t accepts = 0;
};

/// Outcome of a multi-chain run.
struct ChainReport {
  std::size_t winner = 0;              ///< index of the winning chain
  std::vector<AnnealStats> chains;     ///< per-chain annealing stats
  ExchangeStats exchange;
};

/// Everything the orchestrator needs to equip one chain.  Built by the
/// Floorplanner from its options (kept separate so this header does not
/// depend on floorplanner.hpp).
struct ChainSetup {
  ThermalConfig fast_thermal;        ///< fast-grid thermal config per chain
  std::size_t blur_radius = 12;
  /// Feed CostEvaluator::Options::detailed_engine with the chain's engine.
  bool detailed_inner_thermal = false;
  thermal::ParallelConfig engine_parallel;  ///< sweep sharding per engine
  /// Evaluator options; `detailed_engine` is overwritten per chain.
  CostEvaluator::Options eval;
  AnnealOptions anneal;
  ChainOptions chains;
};

struct ExplorationHooks;  // full definition in exploration_checkpoint.hpp

class ChainOrchestrator {
 public:
  explicit ChainOrchestrator(ChainSetup setup);

  /// Run the chains from `initial`; on return the winning chain's best
  /// layout has been applied to `fp`.  Deterministic for a given
  /// (fp, initial, seed) regardless of scheduling.
  ChainReport run(Floorplan3D& fp, const LayoutState& initial,
                  std::uint64_t seed);

  /// Checkpointing variant: when `hooks->save` is set, snapshot every
  /// chain at exchange barriers (each checkpoint embeds `flow_rng`, the
  /// caller RNG's position, so the flow can be resumed end to end); when
  /// `hooks->resume` is set, skip begin() and continue from the
  /// checkpoint -- `initial` and `seed` are then ignored.  Resumed runs
  /// are bitwise-identical to uninterrupted ones.
  ChainReport run(Floorplan3D& fp, const LayoutState& initial,
                  std::uint64_t seed, const ExplorationHooks* hooks,
                  const Rng::State& flow_rng);

  [[nodiscard]] const ChainSetup& setup() const { return setup_; }

  /// Deterministic per-chain seed stream (exposed for tests).
  [[nodiscard]] static std::uint64_t chain_seed(std::uint64_t base,
                                                std::size_t chain);

 private:
  ChainSetup setup_;
};

}  // namespace tsc3d::floorplan
