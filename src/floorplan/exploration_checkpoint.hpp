// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Durable annealing checkpoints: everything a resumed exploration needs
// to continue bitwise-identically to an uninterrupted run.  A checkpoint
// is taken at a stage boundary (single chain) or an exchange barrier
// (parallel tempering) -- the two places where no batch or trial bracket
// is open and no move is half-applied -- and covers, per chain:
//
//   * the layout state and the tracked best (sequence pairs, extents,
//     die assignment),
//   * the full AnnealSession bookkeeping (temperatures, cadence
//     counters, stats, the current/best cost breakdowns),
//   * the RNG stream position (including a pending cached gaussian),
//   * the CostEvaluator's resumable state (adaptive normalizers, cached
//     expensive terms, escalated outline weight),
//   * the detailed in-loop engine's warm-start temperature field, and
//   * the per-module voltage assignment the last full evaluation wrote
//     into the floorplan.
//
// Tempering checkpoints additionally carry the exchange RNG, the
// completed-stage/round counters and the exchange stats.  The restored
// layout gets a FRESH tracking family, so the first apply_to() fully
// repacks every die -- bitwise-identical positions by the incremental-
// packing parity contract (positions are a pure function of sequences
// and extents; see tests/test_incremental_eval.cpp).
//
// The on-disk encoding (versioned, checksummed, validated against the
// job identity) lives in src/service/checkpoint_io.hpp; this header is
// the in-memory contract between the annealing stack and that service
// layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/floorplan.hpp"
#include "core/rng.hpp"
#include "floorplan/annealer.hpp"
#include "floorplan/chain_orchestrator.hpp"
#include "floorplan/cost.hpp"
#include "thermal/thermal_engine.hpp"

namespace tsc3d::floorplan {

/// Value snapshot of a LayoutState: the per-die sequence pairs (both
/// sequences), module extents and die assignment.  Tracking bookkeeping
/// is NOT captured -- restore_layout() allocates a fresh family.
struct LayoutStateImage {
  bool tracked = true;  ///< restore with incremental tracking enabled
  std::vector<std::vector<std::size_t>> positive;  ///< per die
  std::vector<std::vector<std::size_t>> negative;  ///< per die
  std::vector<double> width;
  std::vector<double> height;
  std::vector<std::size_t> die_of;
};

[[nodiscard]] LayoutStateImage capture_layout(const LayoutState& state);
/// Rebuild a LayoutState from an image.  Throws std::invalid_argument on
/// inconsistent sequences (see SequencePair::restore).
[[nodiscard]] LayoutState restore_layout(const LayoutStateImage& image);

/// One chain's complete resumable state (see file comment).
struct ChainCheckpoint {
  LayoutStateImage state;
  LayoutStateImage best;
  CostBreakdown current;
  CostBreakdown best_cost;
  bool best_legal = false;
  double initial_outline_weight = 0.0;
  double temperature = 0.0;
  double cooling = 0.0;
  std::uint64_t total_moves = 0;
  std::uint64_t moves_per_stage = 0;
  std::uint64_t annealed_stages = 0;
  std::uint64_t stage = 0;
  std::uint64_t since_full = 0;
  std::uint64_t since_thermal = 0;
  bool refresh_pending = false;
  AnnealStats stats;
  Rng::State rng;
  CostEvaluator::CheckpointState eval;
  bool has_field = false;            ///< detailed engine warm field present
  thermal::FieldSnapshot field;
  std::vector<std::uint64_t> voltage_index;  ///< per module, from the fp
};

/// A whole exploration at a checkpointable boundary: the flow-level
/// state (clock budget, outer RNG) plus one ChainCheckpoint per chain.
struct ExplorationCheckpoint {
  bool tempering = false;       ///< chains.size() > 1 path
  double clock_period_ns = 0.0; ///< auto-derived timing budget
  /// The flow RNG's position: for a single chain this is the (only)
  /// move RNG, duplicated in chains[0].rng; for tempering it is the
  /// caller RNG after the orchestrator seed draw (consumed again by the
  /// dummy-TSV post-processing).
  Rng::State flow_rng;
  std::vector<ChainCheckpoint> chains;
  // --- tempering only ---------------------------------------------------
  Rng::State exchange_rng;
  std::uint64_t done_stages = 0;
  std::uint64_t round = 0;
  ExchangeStats exchange;
};

/// Checkpoint plumbing for Floorplanner::run: `save` (when set) is
/// called at every stage boundary / exchange barrier where the completed
/// stage count is a multiple of `checkpoint_interval`, plus the final
/// boundary before finish(); `resume` (when set) skips initialization
/// and continues from the checkpoint instead.  The caller owns matching
/// the resume checkpoint to the (design, options, seed) of the run --
/// the service layer does so by hashing all three into the file identity.
struct ExplorationHooks {
  std::size_t checkpoint_interval = 1;  ///< stages between saves
  std::function<void(const ExplorationCheckpoint&)> save;
  const ExplorationCheckpoint* resume = nullptr;
};

/// Snapshot one chain at a stage boundary.  `engine` is the evaluator's
/// detailed in-loop engine or null; `fp` is the chain's floorplan (for
/// the voltage assignment).  Throws std::logic_error if the evaluator
/// has an open batch or trial bracket.
[[nodiscard]] ChainCheckpoint capture_chain(const AnnealSession& session,
                                            const Rng& rng,
                                            const CostEvaluator& eval,
                                            const thermal::ThermalEngine* engine,
                                            const Floorplan3D& fp);

/// Restore one chain: rebuilds `state_storage` and `session` (pointing
/// at it), repositions `rng`, reinstates the evaluator/engine/voltage
/// state, and applies the restored layout to `fp` so the first
/// post-resume move sees exactly the positions the capture-time run saw.
void restore_chain(const ChainCheckpoint& ck, AnnealSession& session,
                   LayoutState& state_storage, Rng& rng, CostEvaluator& eval,
                   thermal::ThermalEngine* engine, Floorplan3D& fp);

}  // namespace tsc3d::floorplan
