// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Floorplanner: the complete flow of Fig. 3.
//
//   3D floorplanning input
//     -> [SA loop] layout generation -> TSV placement -> leakage-aware
//        power/thermal management (voltage assignment) -> fast thermal
//        analysis -> leakage analysis (Eq. 1 correlation + Eq. 3 spatial
//        entropy) -> evaluation of timing paths -> cost -> adapt solution
//     -> [post-processing] sampling of Gaussian-distributed activities ->
//        correlation-based insertion of dummy thermal TSVs (sweet-spot
//        stop criterion)
//     -> detailed thermal analysis (HotSpot-style grid solver) ->
//        verification of correlation
//
// Two presets reproduce the paper's experimental setups: power-aware
// floorplanning (PA, the baseline) and TSC-aware floorplanning.
#pragma once

#include <cstddef>
#include <vector>

#include "core/floorplan.hpp"
#include "core/rng.hpp"
#include "floorplan/annealer.hpp"
#include "floorplan/chain_orchestrator.hpp"
#include "floorplan/cost.hpp"
#include "floorplan/exploration_checkpoint.hpp"
#include "tsv/dummy_inserter.hpp"

namespace tsc3d::floorplan {

enum class FlowMode {
  power_aware,  ///< setup (i) of Sec. 7
  tsc_aware,    ///< setup (ii) of Sec. 7
};

struct FloorplannerOptions {
  FlowMode mode = FlowMode::power_aware;
  AnnealOptions anneal;
  power::TimingOptions timing;
  power::VoltageOptions voltage;
  leakage::SpatialEntropyOptions entropy;

  /// Grid resolution of the fast in-loop analysis (power blurring and
  /// leakage estimation).
  std::size_t fast_grid = 32;
  /// Grid resolution of the detailed verification solve.
  std::size_t verify_grid = 64;
  /// Grid resolution of the activity-sampling solves (dummy-TSV loop).
  std::size_t sampling_grid = 32;
  /// Kernel half-width of the power-blurring masks [bins].
  std::size_t blur_radius = 12;

  ThermalConfig thermal;  ///< material/boundary parameters (grids overridden)
  tsv::DummyInsertOptions dummy;
  /// Run the dummy-TSV post-processing (TSC mode only by default; set
  /// explicitly to override).
  bool dummy_insertion = true;
  /// Apply Corblivar's thermal design rule at initialization.
  bool hot_modules_to_top = true;
  /// If > 0, derive the clock period from the initial layout's nominal
  /// critical delay: clock = factor * delay.  A factor below 1 leaves
  /// some modules timing-critical after SA shrinks the wirelength, so
  /// voltage assignment has real slack structure to work with (cf. the
  /// red high-voltage modules of Fig. 4a).  0 keeps the configured clock.
  double auto_clock_factor = 0.9;
  /// Replace the power-blurring estimate inside the SA loop with detailed
  /// warm-started ThermalEngine solves at fast_grid resolution.  Closes
  /// the fast-vs-detailed quality gap the paper concedes (Sec. 6):
  /// across Table 1 it lowers the verified peak temperature.  On by
  /// default since PR 5 -- warm starts, batched candidate fan-out, and
  /// the move/temperature-aware tolerance schedule
  /// (AnnealOptions::inner_tolerance_scale) keep the detailed loop
  /// within ~1.1-1.3x of the blurred loop's runtime at an equal move
  /// budget (see README "Performance").  Set false to restore the
  /// paper's fast estimate.
  bool detailed_inner_thermal = true;
  /// Worker threads for every ThermalEngine the flow creates (fast,
  /// sampling, verification): large single solves shard their sweeps,
  /// and batched candidate evaluation (anneal.batch_candidates > 1)
  /// fans its k solves across the same pool.  threads == 1 keeps
  /// everything serial; threaded results are bitwise identical.
  thermal::ParallelConfig parallel;
  /// Parallel-tempering annealing: chains.chains > 1 replaces the single
  /// SA run with that many concurrent chains plus periodic replica
  /// exchange (see chain_orchestrator.hpp).  Note total thread use is
  /// chains.chains * parallel.threads when both are raised.
  ChainOptions chains;
  /// Incremental move evaluation: dirty-die repacking plus cached per-net
  /// wirelength/delay and per-die bounds (see CostEvaluator::Options::
  /// incremental).  Bitwise-identical results to the full recompute; off
  /// restores the seed's rescan-everything evaluation for A/B runs.
  bool incremental_eval = true;
  /// Cross-check cadence for the incremental path (0 = never): every Nth
  /// cheap evaluation recomputes from scratch and throws on divergence.
  /// Debug builds default to 256, release to 0.
#ifndef NDEBUG
  std::size_t cross_check_interval = 256;
#else
  std::size_t cross_check_interval = 0;
#endif
};

/// Everything Table 2 reports for one floorplanning run, plus traces.
struct FloorplanMetrics {
  // --- leakage (verified with the detailed solver) ----------------------
  std::vector<double> correlation;  ///< Eq. 1 per die (r1, r2)
  std::vector<double> entropy;      ///< Eq. 3 per die (S1, S2)
  // --- design cost --------------------------------------------------------
  double power_w = 0.0;
  double critical_delay_ns = 0.0;
  double wirelength_m = 0.0;
  double peak_k = 0.0;
  std::size_t signal_tsvs = 0;
  std::size_t dummy_tsvs = 0;
  std::size_t voltage_volumes = 0;
  double runtime_s = 0.0;
  bool legal = false;
  // --- traces ---------------------------------------------------------------
  AnnealStats anneal;   ///< winning chain's stats when tempering ran
  tsv::DummyInsertResult dummy;
  /// Multi-chain trace; `chains.chains` is empty for single-chain runs.
  ChainReport chains;
};

class Floorplanner {
 public:
  explicit Floorplanner(FloorplannerOptions options = {});

  /// Run the full flow on `fp` (modules get placed, TSVs and voltages
  /// assigned).  Deterministic for a given floorplan + rng state.
  FloorplanMetrics run(Floorplan3D& fp, Rng& rng) const;

  /// Checkpointing variant (see exploration_checkpoint.hpp): `hooks.save`
  /// snapshots the annealing state at stage boundaries (single chain) or
  /// exchange barriers (tempering); `hooks.resume` continues from a
  /// snapshot instead of initializing -- the resumed flow's final layout,
  /// metrics (runtime aside) and RNG position are bitwise-identical to an
  /// uninterrupted run's.  The caller guarantees the checkpoint belongs
  /// to this exact (design, options, seed); the batch service does so by
  /// hashing all three into the checkpoint file identity (docs/JOBS.md).
  FloorplanMetrics run(Floorplan3D& fp, Rng& rng,
                       const ExplorationHooks& hooks) const;

  [[nodiscard]] const FloorplannerOptions& options() const { return opt_; }

  /// Preset option sets for the two experimental setups of Sec. 7.
  [[nodiscard]] static FloorplannerOptions power_aware_setup();
  [[nodiscard]] static FloorplannerOptions tsc_aware_setup();

 private:
  FloorplannerOptions opt_;
};

}  // namespace tsc3d::floorplan
