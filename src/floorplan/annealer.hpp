// tsc3d -- thermal side-channel-aware 3D floorplanning.
//
// Simulated-annealing engine over the 3D layout state: one sequence pair
// per die plus the inter-die module assignment.  Moves cover intra-die
// reordering (sequence swaps), soft-module resizing / hard-module
// rotation, and inter-die transfers and exchanges -- so the full 3D
// design space is explored, as the paper emphasizes ("not only by
// carefully inserting dummy TSVs, but more so by thoroughly exploring
// the 3D design space", Sec. 7.3).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/floorplan.hpp"
#include "core/rng.hpp"
#include "floorplan/cost.hpp"
#include "floorplan/sequence_pair.hpp"

namespace tsc3d::floorplan {

struct MoveRecord;  // full definition in floorplan/move_transaction.hpp

/// The mutable floorplanning state the annealer works on.
///
/// Incremental packing: each die carries a content version (bumped by
/// touch_die whenever its sequences, a member's extents, or its module
/// set change) drawn from a counter shared by every copy of the state
/// ("family").  apply_to() stamps the floorplan with the (family,
/// version) it wrote per die and, on the next call, skips any die whose
/// stamp still matches -- those module positions are bitwise-untouched
/// by construction, since an unchanged (family, version) pair uniquely
/// identifies the die content that produced them.  The per-die Packing
/// is cached at its version, so a revert back to a previously packed
/// version still repacks (versions never repeat) but clean dies cost
/// nothing at all.  The shared counter is atomic, so states exchanged
/// between parallel-tempering chains stay sound; version VALUES may
/// depend on scheduling, but only stamp EQUALITY is ever consulted, and
/// equal stamps imply identical content -- results stay deterministic.
struct LayoutState {
  std::vector<SequencePair> die_sp;    ///< one sequence pair per die
  std::vector<double> width;           ///< chosen extents per module id
  std::vector<double> height;
  std::vector<std::size_t> die_of;     ///< die assignment per module id

  /// Build an initial state from the floorplan's modules.  If
  /// `hot_modules_to_top` is set, the hotter half (by power density) goes
  /// to the die adjacent to the heatsink -- Corblivar's thermal design
  /// rule (Sec. 7.2).
  [[nodiscard]] static LayoutState initial(const Floorplan3D& fp, Rng& rng,
                                           bool hot_modules_to_top = true);

  /// Pack every die whose stamp no longer matches `fp` and write shapes +
  /// die assignments + per-die bounds for exactly those dies; dies whose
  /// stamp matches are skipped (their positions in `fp` are already this
  /// state's, bitwise).  States without tracking (not built by initial())
  /// pack and write everything.
  void apply_to(Floorplan3D& fp) const;

  /// Mark die `d` dirty: bumps its content version to a fresh value and
  /// drops its cached packing.  Every mutation of die_sp[d], of a member
  /// module's width/height, or of the die's member set MUST be announced
  /// here (the annealer's moves and undos do).
  void touch_die(std::size_t d);

  /// Allocate a fresh tracking family covering `dies` dies (initial()
  /// calls this; exposed for tests building states by hand).
  void init_tracking(std::size_t dies);

  /// Drop tracking entirely: apply_to() reverts to the seed behavior of
  /// packing every die and writing every module on every call (copies of
  /// an untracked state stay untracked).  The floorplanner uses this
  /// when incremental evaluation is disabled, so --incremental=off is an
  /// end-to-end A/B of the seed path.
  void disable_tracking();

  /// True when apply_to() may skip clean dies (tracking allocated).
  [[nodiscard]] bool tracked() const { return version_counter != nullptr; }

  // --- incremental-packing bookkeeping (see class comment) --------------
  std::uint64_t family = 0;                 ///< 0 = untracked
  std::vector<std::uint64_t> die_version;   ///< content version per die
  /// Shared, monotone version source for the whole copy-family.
  std::shared_ptr<std::atomic<std::uint64_t>> version_counter;
  /// Cached packing per die, valid while packing_version == die_version.
  mutable std::vector<Packing> packing_cache;
  mutable std::vector<std::uint64_t> packing_version;  ///< 0 = invalid
};

struct AnnealOptions {
  double initial_accept = 0.85;   ///< target acceptance at T0
  /// Geometric stage cooling factor; 0 (default) derives the factor so
  /// the temperature decays to final_temp_ratio * T0 over the stages.
  double cooling = 0.0;
  double final_temp_ratio = 1e-3;
  std::size_t stages = 50;
  /// Total SA moves; 0 = auto-scale with the design size
  /// (8000 + 150 * #modules).
  std::size_t total_moves = 0;
  std::size_t full_eval_interval = 150;  ///< moves between voltage refresh
  /// Moves between fast-thermal/correlation refreshes.  0 disables the
  /// intermediate level (thermal terms then refresh with the full eval).
  std::size_t thermal_eval_interval = 0;
  /// Fraction of the stages run greedily (T ~ 0) at the end.
  double greedy_tail = 0.15;
  double transfer_prob = 0.12;    ///< inter-die transfer moves
  double exchange_prob = 0.08;    ///< inter-die exchange moves
  double resize_prob = 0.20;      ///< soft resize / hard rotate moves
  /// Fixed-outline pressure: whenever a stage ends without the outline
  /// met, the outline weight is multiplied by this factor (1 disables),
  /// up to outline_cap_factor times its starting value.
  double outline_escalation = 1.35;
  double outline_cap_factor = 256.0;
  /// If the annealed search never met the outline, run this fraction of
  /// total_moves as a greedy legalization pass that accepts only moves
  /// reducing the outline violation (ties broken by total cost).
  double repair_fraction = 0.25;
  /// Candidate moves scored per annealing step.  With k > 1 each step
  /// proposes k independent moves from the current state, scores them in
  /// ONE CostEvaluator batch (the thermal solves fan out across the
  /// engine's worker pool against a shared conductance assembly), and
  /// applies the Metropolis rule over the batch in proposal order --
  /// the first accepted candidate wins, the rest are discarded.  The
  /// result is deterministic per seed; k == 1 keeps the classic
  /// one-move-per-step path (and run_stage_batched(k=1) is
  /// bitwise-identical to it, see tests/test_batched_eval.cpp).
  std::size_t batch_candidates = 1;
  /// Adaptive tolerance for the detailed in-loop thermal solves: the
  /// maximum factor by which the engine's stopping tolerance is loosened
  /// while the search is hot.  Per refresh the annealer sets
  ///
  ///   scale = 1 + (inner_tolerance_scale - 1) * sqrt(T / T0) * move_size
  ///
  /// (the square root because geometric cooling collapses T/T0 within a
  /// few stages, long before the search stops making K-scale moves)
  /// where move_size in (0, 1] grades the proposed move's thermal reach
  /// (resize < intra-die swap < transfer < exchange): early, large moves
  /// change the cost by whole Kelvin and rank correctly under a coarse
  /// solve, while the cooled-down endgame tightens back to the
  /// configured tolerance_k.  Authoritative evaluations (session begin,
  /// tempering-exchange refreshes, the final install) always run at
  /// scale 1.  1 disables the schedule; the verification solve is on a
  /// separate engine and never sees it.  Deterministic: the scale is a
  /// pure function of (stage, move), not of timing.
  double inner_tolerance_scale = 32.0;
  /// Run the move loops through MoveTransaction (speculative
  /// evaluate/commit/rollback, see floorplan/move_transaction.hpp)
  /// instead of the apply/snapshot/revert/apply pattern.  Requires
  /// incremental evaluation and a tracked state; otherwise the classic
  /// loops run regardless of this flag.  Both paths are bitwise-identical
  /// per seed, including the RNG stream position
  /// (tests/test_incremental_eval.cpp); this switch exists as an A/B
  /// lever and an escape hatch, not as a quality trade-off.
  bool transactional = true;
};

struct AnnealStats {
  std::size_t moves = 0;
  std::size_t accepted = 0;
  std::size_t full_evals = 0;
  std::size_t repair_moves = 0;  ///< greedy legalization moves run
  double initial_temperature = 0.0;
  double best_cost = 0.0;
  bool found_legal = false;   ///< some visited state fit the outline
  CostBreakdown best_breakdown;
};

/// Resumable annealing run: everything `Annealer::run` used to keep in
/// locals, so an external driver (the parallel-tempering orchestrator)
/// can interleave stages with cross-chain state exchanges.  Produced by
/// Annealer::begin, advanced by run_stage, closed by finish; plain run()
/// composes the three and behaves exactly as before.
struct AnnealSession {
  LayoutState* state = nullptr;   ///< the state being annealed (chain-owned)
  CostBreakdown current;          ///< cost of *state under the session's fp
  LayoutState best;
  CostBreakdown best_cost;
  bool best_legal = false;
  double initial_outline_weight = 0.0;
  double temperature = 0.0;       ///< current stage temperature (ladder-scalable)
  double cooling = 0.0;
  std::size_t total_moves = 0;
  std::size_t moves_per_stage = 0;
  std::size_t annealed_stages = 0;
  std::size_t stage = 0;          ///< next stage to run
  std::size_t since_full = 0;
  std::size_t since_thermal = 0;
  /// Set after *state was replaced from outside (a tempering exchange):
  /// the next run_stage re-applies the state and refreshes `current`
  /// with a full evaluation before annealing on.
  bool refresh_pending = false;
  AnnealStats stats;
};

class Annealer {
 public:
  Annealer(Floorplan3D& fp, CostEvaluator& evaluator,
           AnnealOptions options = {});

  /// Anneal `state` in place; on return `state` is the best solution
  /// found and has been applied to the floorplan.
  AnnealStats run(LayoutState& state, Rng& rng);

  // --- staged interface (see AnnealSession) -----------------------------
  /// Evaluate `state`, calibrate the initial temperature with a probe
  /// walk, and return a session positioned before the first stage.
  AnnealSession begin(LayoutState& state, Rng& rng);
  /// Run one stage of moves (plus cooling and outline escalation).
  /// Dispatches to the batched step loop when options().batch_candidates
  /// exceeds 1.  Returns false without consuming randomness once all
  /// stages ran.
  bool run_stage(AnnealSession& session, Rng& rng);
  /// The batched stage loop at an explicit batch size (run_stage uses
  /// opt_.batch_candidates; exposed so tests can drive k = 1 through the
  /// batched machinery and assert it bitwise-matches the unbatched path).
  bool run_stage_batched(AnnealSession& session, Rng& rng, std::size_t k);
  /// Greedy legalization tail (if needed) + install the best state into
  /// `*session.state` and the floorplan; returns the final stats.
  AnnealStats finish(AnnealSession& session, Rng& rng);

 private:
  /// Apply one random move and fill `rec` with enough data to revert it
  /// (classic loops) or replay it without randomness (batched
  /// transactional accept).  rec.kind == none means no move was possible.
  void random_move(LayoutState& state, Rng& rng, MoveRecord& rec) const;
  /// Thermal reach of a move kind, in (0, 1] (see
  /// AnnealOptions::inner_tolerance_scale).
  static double move_size_factor(const MoveRecord& rec);
  /// Shared evaluation cadence of the one-move-per-step loops: full /
  /// thermal / cheap by the session's interval counters.  Identical
  /// arithmetic for the transactional and classic branches.
  CostBreakdown evaluate_move(AnnealSession& session, double move_factor);
  /// True when run_stage/finish should route moves through
  /// MoveTransaction (see AnnealOptions::transactional).
  [[nodiscard]] bool use_transactions(const LayoutState& state) const;
  /// Install the tolerance schedule for an in-stage thermal refresh:
  /// scale = 1 + (max - 1) * sqrt(T / T0) * move_factor.
  void apply_tolerance_schedule(const AnnealSession& session,
                                double move_factor);
  /// Re-apply + fully re-evaluate the state after a tempering exchange.
  void stage_refresh(AnnealSession& session);
  /// Stage-end cooling + fixed-outline weight escalation.
  void stage_cool_and_escalate(AnnealSession& session);
  /// Fold an accepted breakdown into the session's best tracking.
  static void track_best(AnnealSession& session, const CostBreakdown& c);
  /// One batched step: propose up to `want` moves, score them as a
  /// CostEvaluator batch, Metropolis over the batch in proposal order.
  void batched_step(AnnealSession& session, Rng& rng, std::size_t want,
                    bool greedy);

  Floorplan3D& fp_;
  CostEvaluator& eval_;
  AnnealOptions opt_;
};

}  // namespace tsc3d::floorplan
