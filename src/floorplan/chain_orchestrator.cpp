#include "floorplan/chain_orchestrator.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>

#include "floorplan/exploration_checkpoint.hpp"
#include "thermal/power_blur.hpp"

namespace tsc3d::floorplan {

namespace {

/// One tempering chain: a full private copy of the design plus the
/// thermal/cost/annealing machinery bound to it.  Nothing in here is
/// shared with another chain, so chains run concurrently without locks.
struct Chain {
  explicit Chain(const Floorplan3D& original) : fp(original) {}

  Floorplan3D fp;
  /// Private engine for the detailed in-loop solves; null when the
  /// chain runs on the shared power-blurring estimate alone.
  std::unique_ptr<thermal::ThermalEngine> engine;
  std::unique_ptr<CostEvaluator> eval;
  std::unique_ptr<Annealer> annealer;
  LayoutState state;
  AnnealSession session;
  Rng rng;
  double ladder = 1.0;  ///< temperature multiplier of this rung
};

/// Cost of a chain's current (or best) state rebased to the outline
/// weight every chain started from.  Outline escalation is chain-local
/// (each Annealer raises its own evaluator's weight while it lingers
/// illegal), so raw totals from different chains can sit on different
/// scales mid-run; subtracting the escalated-minus-initial share of the
/// outline term puts them back on one scale.  For legal states the
/// penalty is zero and this is the raw total.
double rebased_cost(double total, double outline_penalty,
                    double current_weight, double initial_weight) {
  return total - (current_weight - initial_weight) * outline_penalty;
}

/// Run fn(k) for every chain, on worker threads when `parallel`.  The
/// chains' work is disjoint by construction; exceptions are collected
/// and the first one rethrown after all threads joined.
template <typename Fn>
void for_each_chain(std::size_t count, bool parallel, Fn&& fn) {
  if (!parallel || count <= 1) {
    for (std::size_t k = 0; k < count; ++k) fn(k);
    return;
  }
  std::vector<std::exception_ptr> errors(count);
  {
    std::vector<std::jthread> threads;
    threads.reserve(count);
    for (std::size_t k = 0; k < count; ++k)
      threads.emplace_back([&errors, &fn, k] {
        try {
          fn(k);
        } catch (...) {
          errors[k] = std::current_exception();
        }
      });
  }
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);
}

}  // namespace

ChainOrchestrator::ChainOrchestrator(ChainSetup setup)
    : setup_(std::move(setup)) {
  if (setup_.chains.chains == 0)
    throw std::invalid_argument("ChainOrchestrator: need at least one chain");
  if (setup_.chains.ladder_ratio < 1.0)
    throw std::invalid_argument(
        "ChainOrchestrator: ladder_ratio must be >= 1");
}

std::uint64_t ChainOrchestrator::chain_seed(std::uint64_t base,
                                            std::size_t chain) {
  // SplitMix64 finalizer over a golden-ratio stride: nearby (base, chain)
  // pairs map to uncorrelated streams, and the mapping is stable across
  // platforms (pure 64-bit integer arithmetic).
  std::uint64_t z =
      base + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(chain) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

ChainReport ChainOrchestrator::run(Floorplan3D& fp, const LayoutState& initial,
                                   std::uint64_t seed) {
  return run(fp, initial, seed, nullptr, Rng::State{});
}

ChainReport ChainOrchestrator::run(Floorplan3D& fp, const LayoutState& initial,
                                   std::uint64_t seed,
                                   const ExplorationHooks* hooks,
                                   const Rng::State& flow_rng) {
  const std::size_t count = setup_.chains.chains;
  const bool parallel = setup_.chains.parallel;

  // --- calibrate the fast thermal model once -----------------------------
  // PowerBlur kernels depend only on (tech, thermal config, radius), not
  // on any chain's layout, and are immutable after construction, so one
  // calibration pass serves every chain (estimate() is const and
  // stateless -- safe to share across the chain threads).
  thermal::ThermalEngine calibration_engine(fp.tech(), setup_.fast_thermal,
                                            setup_.engine_parallel,
                                            thermal::EngineRole::fast_loop);
  const thermal::PowerBlur blur(calibration_engine, setup_.blur_radius);

  // --- equip the chains --------------------------------------------------
  // All chains start from the same initial state, so every evaluator's
  // adaptive normalizers initialize from the same first full evaluation
  // and chain costs stay directly comparable in the exchange rule.
  std::vector<std::unique_ptr<Chain>> chains;
  chains.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    auto chain = std::make_unique<Chain>(fp);
    CostEvaluator::Options eval_opt = setup_.eval;
    if (setup_.detailed_inner_thermal) {
      chain->engine = std::make_unique<thermal::ThermalEngine>(
          chain->fp.tech(), setup_.fast_thermal, setup_.engine_parallel,
          thermal::EngineRole::fast_loop);
      eval_opt.detailed_engine = chain->engine.get();
    } else {
      eval_opt.detailed_engine = nullptr;
    }
    chain->eval = std::make_unique<CostEvaluator>(chain->fp, blur, eval_opt);
    chain->annealer =
        std::make_unique<Annealer>(chain->fp, *chain->eval, setup_.anneal);
    chain->state = initial;
    chain->rng.reseed(chain_seed(seed, k));
    chain->ladder =
        count > 1 ? std::pow(setup_.chains.ladder_ratio,
                             static_cast<double>(k) /
                                 static_cast<double>(count - 1))
                  : 1.0;
    chains.push_back(std::move(chain));
  }
  Rng exchange_rng(chain_seed(seed, count));

  // --- staged annealing with periodic replica exchange -------------------
  ChainReport report;
  const std::size_t stages = setup_.anneal.stages;
  const std::size_t interval =
      std::max<std::size_t>(1, setup_.chains.exchange_interval);
  std::size_t done = 0;
  std::size_t round = 0;

  if (hooks != nullptr && hooks->resume != nullptr) {
    // Resume: every chain continues from its checkpointed session; the
    // begin() calibration already ran in the original run and its RNG
    // draws are part of the restored stream positions.
    const ExplorationCheckpoint& ck = *hooks->resume;
    if (!ck.tempering || ck.chains.size() != count)
      throw std::invalid_argument(
          "ChainOrchestrator: resume checkpoint does not match the chain "
          "setup");
    for_each_chain(count, parallel, [&](std::size_t k) {
      Chain& c = *chains[k];
      restore_chain(ck.chains[k], c.session, c.state, c.rng, *c.eval,
                    c.engine.get(), c.fp);
    });
    exchange_rng.set_state(ck.exchange_rng);
    done = static_cast<std::size_t>(ck.done_stages);
    round = static_cast<std::size_t>(ck.round);
    report.exchange = ck.exchange;
  } else {
    // --- begin: first full eval + T0 probe, then mount the ladder -------
    for_each_chain(count, parallel, [&](std::size_t k) {
      Chain& c = *chains[k];
      c.session = c.annealer->begin(c.state, c.rng);
      c.session.temperature *= c.ladder;
    });
  }

  const std::size_t save_interval =
      hooks != nullptr ? std::max<std::size_t>(1, hooks->checkpoint_interval)
                       : 1;
  while (done < stages) {
    const std::size_t todo = std::min(interval, stages - done);
    for_each_chain(count, parallel, [&](std::size_t k) {
      Chain& c = *chains[k];
      for (std::size_t st = 0; st < todo; ++st)
        if (!c.annealer->run_stage(c.session, c.rng)) break;
    });
    done += todo;

    if (done < stages && count >= 2) {
      // Exchange round: alternate even/odd ladder pairs, fixed order, one
      // dedicated RNG -- deterministic no matter how the segment threads
      // were scheduled.
      ++report.exchange.rounds;
      for (std::size_t i = round % 2; i + 1 < count; i += 2) {
        Chain& cold = *chains[i];
        Chain& hot = *chains[i + 1];
        ++report.exchange.attempts;
        const double t_cold = cold.session.temperature;
        const double t_hot = hot.session.temperature;
        const double e_cold = rebased_cost(
            cold.session.current.total, cold.session.current.outline_penalty,
            cold.eval->outline_weight(), cold.session.initial_outline_weight);
        const double e_hot = rebased_cost(
            hot.session.current.total, hot.session.current.outline_penalty,
            hot.eval->outline_weight(), hot.session.initial_outline_weight);
        if (t_cold <= 0.0 || t_hot <= 0.0) continue;
        const double log_accept =
            (1.0 / t_cold - 1.0 / t_hot) * (e_cold - e_hot);
        const bool accept =
            log_accept >= 0.0 ||
            exchange_rng.uniform() < std::exp(log_accept);
        if (!accept) continue;
        ++report.exchange.accepts;
        std::swap(*cold.session.state, *hot.session.state);
        std::swap(cold.session.current, hot.session.current);
        cold.session.refresh_pending = true;
        hot.session.refresh_pending = true;
      }
      ++round;
    }

    // Checkpoint at the barrier: every bracket is closed, exchanges (and
    // the round counter) for this barrier are already folded in, so a
    // resume re-enters exactly at the top of this loop.
    if (hooks != nullptr && hooks->save &&
        (done % save_interval == 0 || done >= stages)) {
      ExplorationCheckpoint ck;
      ck.tempering = true;
      ck.clock_period_ns = fp.tech().clock_period_ns;
      ck.flow_rng = flow_rng;
      ck.chains.reserve(count);
      for (std::size_t k = 0; k < count; ++k) {
        Chain& c = *chains[k];
        ck.chains.push_back(capture_chain(c.session, c.rng, *c.eval,
                                          c.engine.get(), c.fp));
      }
      ck.exchange_rng = exchange_rng.state();
      ck.done_stages = done;
      ck.round = round;
      ck.exchange = report.exchange;
      hooks->save(ck);
    }
  }

  // --- finish: repair tails + install each chain's best ------------------
  for_each_chain(count, parallel, [&](std::size_t k) {
    Chain& c = *chains[k];
    c.session.stats = c.annealer->finish(c.session, c.rng);
  });

  // --- pick the winner ---------------------------------------------------
  // Legal layouts dominate illegal ones; ties break toward lower cost,
  // rebased to the shared initial outline weight so chains that
  // escalated differently compare on one scale (for legal layouts the
  // outline term is zero and the rebased cost IS the raw total; shared
  // normalizers cover the rest).
  const auto chain_cost = [&](const Chain& c) {
    const CostBreakdown& b = c.session.stats.best_breakdown;
    return rebased_cost(b.total, b.outline_penalty, c.eval->outline_weight(),
                        c.session.initial_outline_weight);
  };
  std::size_t winner = 0;
  for (std::size_t k = 1; k < count; ++k) {
    const bool best_legal =
        chains[winner]->session.stats.best_breakdown.fits_outline;
    const bool cand_legal =
        chains[k]->session.stats.best_breakdown.fits_outline;
    const bool better =
        (cand_legal && !best_legal) ||
        (cand_legal == best_legal &&
         chain_cost(*chains[k]) < chain_cost(*chains[winner]));
    if (better) winner = k;
  }

  chains[winner]->state.apply_to(fp);
  report.winner = winner;
  report.chains.reserve(count);
  for (const auto& chain : chains)
    report.chains.push_back(chain->session.stats);
  return report;
}

}  // namespace tsc3d::floorplan
