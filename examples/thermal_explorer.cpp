// thermal_explorer: interactive-style exploration of the thermal
// substrate -- build power and TSV maps, solve the stack, and render
// ASCII heat maps plus the leakage correlation, reproducing the Fig. 2
// intuition on the terminal.
//
//   $ ./thermal_explorer [pattern]
// patterns: hotspot (default), gradient, checker, islands
#include <iostream>
#include <string>

#include "core/config.hpp"
#include "leakage/pearson.hpp"
#include "leakage/spatial_entropy.hpp"
#include "thermal/grid_solver.hpp"

namespace {

constexpr std::size_t kGrid = 24;

void render(const char* title, const tsc3d::GridD& map) {
  static const char* shades[] = {" ", ".", ":", "-", "=", "+",
                                 "*", "#", "%", "@"};
  const double lo = map.min();
  const double hi = map.max();
  std::cout << title << "  [" << lo << ", " << hi << "]\n";
  for (std::size_t iy = kGrid; iy > 0; --iy) {
    std::cout << "  ";
    for (std::size_t ix = 0; ix < kGrid; ++ix) {
      const double v = map.at(ix, iy - 1);
      const int shade =
          hi > lo ? static_cast<int>(9.99 * (v - lo) / (hi - lo)) : 0;
      std::cout << shades[shade] << shades[shade];
    }
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tsc3d;
  const std::string pattern = argc > 1 ? argv[1] : "hotspot";

  TechnologyConfig tech;
  tech.die_width_um = tech.die_height_um = 4000.0;
  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = kGrid;
  const thermal::GridSolver solver(tech, cfg);

  // --- choose a bottom-die power pattern ---------------------------------
  std::vector<GridD> power(2, GridD(kGrid, kGrid, 0.0));
  GridD tsvs(kGrid, kGrid, 0.0);
  if (pattern == "gradient") {
    for (std::size_t iy = 0; iy < kGrid; ++iy)
      for (std::size_t ix = 0; ix < kGrid; ++ix)
        power[0].at(ix, iy) = 0.002 + 0.02 * static_cast<double>(ix) /
                                          static_cast<double>(kGrid);
  } else if (pattern == "checker") {
    for (std::size_t iy = 0; iy < kGrid; ++iy)
      for (std::size_t ix = 0; ix < kGrid; ++ix)
        power[0].at(ix, iy) = ((ix / 3 + iy / 3) % 2 == 0) ? 0.02 : 0.002;
  } else if (pattern == "islands") {
    // Hotspots with TSV islands right underneath: the paper's mitigation.
    for (const auto& [cx, cy] :
         {std::pair{6u, 6u}, {17u, 17u}, {6u, 17u}}) {
      for (std::size_t iy = cy - 1; iy <= cy + 1; ++iy)
        for (std::size_t ix = cx - 1; ix <= cx + 1; ++ix) {
          power[0].at(ix, iy) = 0.08;
          tsvs.at(ix, iy) = 1.0;
        }
    }
  } else {  // hotspot
    for (std::size_t iy = 10; iy < 14; ++iy)
      for (std::size_t ix = 10; ix < 14; ++ix) power[0].at(ix, iy) = 0.15;
  }
  // Top die: mild uniform activity.
  power[1].fill(0.004);

  const thermal::ThermalResult res = solver.solve_steady(power, tsvs);

  std::cout << "thermal_explorer -- pattern '" << pattern << "'\n\n";
  render("power map, die 0 [W/bin]", power[0]);
  std::cout << "\n";
  render("thermal map, die 0 [K]", res.die_temperature[0]);
  std::cout << "\n";
  if (tsvs.max() > 0.0) {
    render("TSV density", tsvs);
    std::cout << "\n";
  }

  std::cout << "peak temperature        : " << res.peak_k << " K\n";
  std::cout << "heat via heatsink       : " << res.heat_to_sink_w << " W\n";
  std::cout << "heat via package        : " << res.heat_to_package_w
            << " W\n";
  std::cout << "correlation r1 (Eq. 1)  : "
            << leakage::pearson(power[0], res.die_temperature[0]) << "\n";
  std::cout << "spatial entropy S1      : "
            << leakage::spatial_entropy(power[0]) << "\n";
  std::cout << "\ntry: ./thermal_explorer islands   (TSV islands under the\n"
               "hotspots visibly flatten the thermal map and cut r1)\n";
  return 0;
}
