// attack_demo: the attacker's perspective (Sec. 5 of the paper).
//
// Scenario from the paper: "a security module may check whether a
// provided password is correct, and only then trigger data decryption.
// The thermal patterns for complex decryption operations will be
// relatively easy to distinguish from simple matching operations for
// password checks."  We model a chip with a 'password_check' module and a
// 'decrypt' module and let the attacker decide, from thermal readings
// alone, whether a password attempt triggered decryption.
//
//   $ ./attack_demo
#include <iostream>

#include "attack/attacks.hpp"
#include "benchgen/generator.hpp"
#include "floorplan/floorplanner.hpp"

int main() {
  using namespace tsc3d;

  // --- a small SoC with the two interesting modules ----------------------
  benchgen::BenchmarkSpec spec;
  spec.name = "secure_soc";
  spec.soft_modules = 30;
  spec.num_nets = 60;
  spec.num_terminals = 8;
  spec.outline_mm2 = 9.0;
  spec.power_w = 3.0;
  Floorplan3D chip = benchgen::generate(spec, 99);
  chip.modules()[0].name = "password_check";
  chip.modules()[0].power_w = 0.05;  // trivial comparator
  chip.modules()[1].name = "decrypt";
  chip.modules()[1].power_w = 1.2;   // heavy crypto datapath

  // Floorplan with the baseline (power-aware) flow first.
  floorplan::FloorplannerOptions opt =
      floorplan::Floorplanner::power_aware_setup();
  opt.anneal.total_moves = 8000;
  opt.anneal.stages = 20;
  const floorplan::Floorplanner planner(opt);
  Rng rng(3);
  planner.run(chip, rng);

  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 32;
  const thermal::GridSolver solver(chip.tech(), cfg);

  attack::AttackOptions aopt;
  aopt.activity_boost = 2.0;
  aopt.sensors.noise_sigma_k = 0.05;
  aopt.max_modules = 12;

  std::cout << "=== attack 1: thermal characterization ===\n";
  Rng rng_c(11);
  const attack::CharacterizationResult chr =
      run_characterization_attack(chip, solver, rng_c, aopt);
  std::cout << "modules profiled      : " << chr.modules_profiled << "\n";
  std::cout << "superposition model R2: " << chr.r2 << "\n";
  std::cout << "signature separation  : " << chr.signature_separation
            << " K (higher = modules easier to tell apart)\n\n";

  std::cout << "=== attack 2: localization of modules ===\n";
  Rng rng_l(12);
  const attack::LocalizationResult loc =
      run_localization_attack(chip, solver, rng_l, aopt);
  std::cout << "modules probed   : " << loc.modules_tested << "\n";
  std::cout << "die identified   : " << loc.die_correct << "\n";
  std::cout << "localized        : " << loc.localized << " ("
            << 100.0 * loc.success_rate() << " %)\n";
  std::cout << "mean error       : " << loc.mean_error_um << " um\n\n";

  std::cout << "=== monitoring: password check vs decryption ===\n";
  Rng rng_m(13);
  const attack::MonitoringResult mon = run_monitoring_attack(
      chip, solver, /*password_check=*/0, /*decrypt=*/1, /*trials=*/24,
      rng_m, aopt);
  std::cout << "trials  : " << mon.trials << "\n";
  std::cout << "correct : " << mon.correct << " ("
            << 100.0 * mon.accuracy() << " %)\n";
  std::cout << "\nWith accuracy near 100 % the attacker can brute-force\n"
               "passwords even when the module gives no functional\n"
               "response -- the motivating threat of Sec. 5.  Run the\n"
               "bench/attack_success harness to see how the TSC-aware\n"
               "floorplan degrades these numbers.\n";
  return 0;
}
