// tsc3d example: three ways to fight the thermal side channel.
//
//   $ ./mitigation_comparison
//
// Puts the paper's design-time mitigation next to the two runtime
// alternatives built into this library:
//
//   1. TSC-aware floorplanning (the paper): decorrelate at design time;
//      costs a few percent power, no runtime hardware.
//   2. Dummy-activity injection (Gu et al. [18]): smooth the thermal
//      profile at runtime; effective only at high injection budgets.
//   3. DVFS throttling (DTM, refs [13]/[14]): built for temperature
//      capping, shown here for its (side) effect on thermal contrast.
//
// Each row reports the bottom-die correlation r1 (Eq. 1), the power
// overhead, and the peak temperature.
#include <iostream>

#include "benchgen/generator.hpp"
#include "floorplan/floorplanner.hpp"
#include "leakage/pearson.hpp"
#include "mitigation/noise_injection.hpp"

int main() {
  using namespace tsc3d;
  const std::uint64_t seed = 5;

  std::cout << "tsc3d mitigation comparison on benchmark n100\n\n";

  // --- 1. the two floorplanning setups (PA baseline and TSC) ----------
  struct Row {
    std::string name;
    double r1 = 0.0;
    double power_w = 0.0;
    double peak_k = 0.0;
  };
  std::vector<Row> rows;

  Floorplan3D pa_chip = benchgen::generate("n100", seed);
  floorplan::FloorplannerOptions pa_opt =
      floorplan::Floorplanner::power_aware_setup();
  pa_opt.anneal.total_moves = 12000;
  pa_opt.anneal.stages = 25;
  Rng pa_rng(seed);
  const auto pa = floorplan::Floorplanner(pa_opt).run(pa_chip, pa_rng);
  rows.push_back({"power-aware floorplan (baseline)", pa.correlation[0],
                  pa.power_w, pa.peak_k});

  Floorplan3D tsc_chip = benchgen::generate("n100", seed);
  floorplan::FloorplannerOptions tsc_opt =
      floorplan::Floorplanner::tsc_aware_setup();
  tsc_opt.anneal.total_moves = 12000;
  tsc_opt.anneal.stages = 25;
  tsc_opt.dummy.samples_per_iteration = 8;
  tsc_opt.dummy.max_iterations = 5;
  Rng tsc_rng(seed);
  const auto tsc = floorplan::Floorplanner(tsc_opt).run(tsc_chip, tsc_rng);
  rows.push_back({"TSC-aware floorplan (the paper)", tsc.correlation[0],
                  tsc.power_w, tsc.peak_k});

  // --- 2. runtime injection on top of the PA floorplan ----------------
  ThermalConfig cfg = pa_opt.thermal;
  cfg.grid_nx = cfg.grid_ny = 32;
  const thermal::GridSolver solver(pa_chip.tech(), cfg);
  for (const double budget : {0.10, 0.40}) {
    mitigation::InjectionOptions iopt;
    iopt.budget_fraction = budget;
    iopt.iterations = 8;
    const auto inj = run_noise_injection(pa_chip, solver, iopt);
    rows.push_back({"PA + injection [18], budget " +
                        std::to_string(static_cast<int>(100 * budget)) + " %",
                    inj.correlation_after[0],
                    pa.power_w + inj.power_overhead_w, inj.peak_k_after});
  }

  std::cout << "mitigation                          |   r1   | power [W] | "
               "peak T [K]\n"
            << "------------------------------------+--------+-----------+-"
               "----------\n";
  for (const auto& row : rows)
    std::printf("%-35s | %6.3f | %9.3f | %10.2f\n", row.name.c_str(), row.r1,
                row.power_w, row.peak_k);

  std::cout << "\nReading the table: the TSC-aware floorplan buys its "
               "correlation drop\nwith a small power overhead fixed at "
               "design time; injection keeps paying\npower at runtime, "
               "heats the stack, and (on hotspot-dominated designs)\ndoes "
               "not even lower the Eq. 1 correlation -- its strength is "
               "profile\nsmoothing, not decorrelation (see "
               "bench/baseline_injection).\n";
  return 0;
}
