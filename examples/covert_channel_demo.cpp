// tsc3d example: a thermal covert channel between two on-chip modules.
//
//   $ ./covert_channel_demo
//
// Reproduces the scenario behind Masti et al. [5] (Sec. 2.1 of the
// paper): a sender module modulates its power; a receiver decodes the
// bit stream from thermal readings.  The demo sweeps the symbol rate and
// shows the thermal low-pass wall of Fig. 1 -- fast symbols blur
// together, slow symbols decode cleanly but cap the capacity.
#include <iostream>

#include "attack/covert_channel.hpp"
#include "benchgen/generator.hpp"
#include "floorplan/annealer.hpp"
#include "tsv/planner.hpp"

int main() {
  using namespace tsc3d;

  // A small two-die design; the largest bottom-die module is the sender.
  benchgen::BenchmarkSpec spec;
  spec.name = "covert";
  spec.soft_modules = 24;
  spec.num_nets = 40;
  spec.num_terminals = 8;
  spec.outline_mm2 = 4.0;
  spec.power_w = 3.0;
  Floorplan3D chip = benchgen::generate(spec, /*seed=*/11);

  Rng rng(11);
  floorplan::LayoutState layout = floorplan::LayoutState::initial(chip, rng);
  layout.apply_to(chip);
  tsv::place_signal_tsvs(chip);

  std::size_t sender = 0;
  double best_area = -1.0;
  for (std::size_t i = 0; i < chip.modules().size(); ++i) {
    const Module& m = chip.modules()[i];
    if (m.die == 0 && m.shape.area() > best_area) {
      best_area = m.shape.area();
      sender = i;
    }
  }

  ThermalConfig cfg;
  cfg.grid_nx = cfg.grid_ny = 16;
  const thermal::GridSolver solver(chip.tech(), cfg);

  std::cout << "tsc3d covert-channel demo -- sender: module '"
            << chip.modules()[sender].name << "' ("
            << chip.modules()[sender].power_w << " W nominal)\n\n"
            << "bit period [ms] | BER    | capacity [bit/s] | swing [K]\n"
            << "----------------+--------+------------------+----------\n";

  attack::CovertChannelOptions opt;
  opt.bits = 24;
  opt.power_boost = 3.0;
  opt.dt_s = 0.005;

  Rng channel_rng(23);
  for (const double period : {0.002, 0.005, 0.02, 0.1, 0.5}) {
    opt.bit_period_s = period;
    opt.dt_s = std::min(0.005, period / 4.0);
    const auto r =
        attack::run_covert_channel(chip, solver, sender, channel_rng, opt);
    std::printf("%15.0f | %6.3f | %16.2f | %8.4f\n", 1e3 * period,
                r.bit_error_rate, r.capacity_bps, r.signal_swing_k);
  }

  std::cout << "\nThe slow thermal time constants (Fig. 1 of the paper) "
               "bound the channel:\nfast symbols lose their temperature "
               "swing, slow symbols decode cleanly\nbut cap the rate -- "
               "the same low-pass physics that limits the attacker's\n"
               "thermal side channel limits the covert sender.\n";
  return 0;
}
