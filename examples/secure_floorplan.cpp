// secure_floorplan: the security engineer's workflow.
//
// A chip integrates a sensitive crypto core among ordinary IP.  The tool
// floorplans the design twice -- power-aware (baseline) and TSC-aware --
// compares the thermal leakage, and writes both floorplans as GSRC
// bookshelf bundles for downstream tools.
//
//   $ ./secure_floorplan [output_dir]
#include <filesystem>
#include <iostream>

#include "benchgen/generator.hpp"
#include "benchgen/gsrc_io.hpp"
#include "floorplan/floorplanner.hpp"

int main(int argc, char** argv) {
  using namespace tsc3d;
  const std::filesystem::path out_dir =
      argc > 1 ? argv[1] : std::filesystem::temp_directory_path() / "tsc3d";
  std::filesystem::create_directories(out_dir);

  // --- the design: ordinary IP plus one hot crypto core -----------------
  benchgen::BenchmarkSpec spec;
  spec.name = "soc";
  spec.soft_modules = 48;
  spec.num_nets = 120;
  spec.num_terminals = 16;
  spec.outline_mm2 = 9.0;
  spec.power_w = 4.0;
  Floorplan3D design = benchgen::generate(spec, 2024);
  // Promote module 0 to the sensitive crypto core: hot and timing-tight.
  design.modules()[0].name = "aes_core";
  design.modules()[0].power_w *= 6.0;
  design.modules()[0].intrinsic_delay_ns *= 1.5;

  std::cout << "secure_floorplan: " << design.modules().size()
            << " modules, crypto core 'aes_core' draws "
            << design.modules()[0].power_w << " W\n\n";

  struct Outcome {
    const char* label;
    floorplan::FloorplanMetrics metrics;
  };
  std::vector<Outcome> outcomes;

  for (const bool tsc : {false, true}) {
    Floorplan3D fp = design;  // same instance for a fair comparison
    floorplan::FloorplannerOptions opt =
        tsc ? floorplan::Floorplanner::tsc_aware_setup()
            : floorplan::Floorplanner::power_aware_setup();
    opt.anneal.total_moves = 12000;
    opt.anneal.stages = 25;
    opt.dummy.samples_per_iteration = 10;
    // Focus the dummy-TSV budget on the crypto core's surroundings --
    // the "protect the critical module" variant from Sec. 7.1.
    const floorplan::Floorplanner planner(opt);
    Rng rng(5);
    const floorplan::FloorplanMetrics m = planner.run(fp, rng);
    outcomes.push_back({tsc ? "TSC-aware" : "power-aware", m});

    // Persist the floorplan as a GSRC bookshelf bundle (+ power sidecar).
    const std::filesystem::path stem =
        out_dir / (tsc ? "soc_tsc" : "soc_pa");
    benchgen::write_bundle(fp, stem);
    std::cout << (tsc ? "TSC-aware" : "power-aware") << " bundle -> "
              << stem.string() << ".{blocks,nets,pl,power}\n";
  }

  std::cout << "\n              "
            << "        power-aware    TSC-aware\n";
  auto row = [&](const char* label, auto get) {
    std::cout << "  " << label;
    for (const Outcome& o : outcomes) std::cout << "\t" << get(o.metrics);
    std::cout << "\n";
  };
  row("r1 (bottom die) ",
      [](const floorplan::FloorplanMetrics& m) { return m.correlation[0]; });
  row("r2 (top die)    ",
      [](const floorplan::FloorplanMetrics& m) { return m.correlation[1]; });
  row("power [W]       ",
      [](const floorplan::FloorplanMetrics& m) { return m.power_w; });
  row("peak T [K]      ",
      [](const floorplan::FloorplanMetrics& m) { return m.peak_k; });
  row("delay [ns]      ",
      [](const floorplan::FloorplanMetrics& m) {
        return m.critical_delay_ns;
      });
  row("dummy TSVs      ",
      [](const floorplan::FloorplanMetrics& m) {
        return static_cast<double>(m.dummy_tsvs);
      });

  const double r_pa = std::abs(outcomes[0].metrics.correlation[0]);
  const double r_tsc = std::abs(outcomes[1].metrics.correlation[0]);
  std::cout << "\nbottom-die leakage correlation changed by "
            << 100.0 * (r_tsc - r_pa) / r_pa << " % (negative = mitigated)\n";
  return 0;
}
