// tsc3d quickstart: floorplan a small 3D IC with thermal side-channel
// awareness and print the leakage and design metrics.
//
//   $ ./quickstart
//
// Walks the whole public API surface in a few steps:
//   1. describe a benchmark (or synthesize one),
//   2. configure the TSC-aware flow,
//   3. run the floorplanner,
//   4. inspect the verified leakage metrics.
#include <iostream>

#include "benchgen/generator.hpp"
#include "floorplan/floorplanner.hpp"

int main() {
  using namespace tsc3d;

  // 1. A small synthetic design: 40 soft IP modules, 80 nets, 3 W total.
  benchgen::BenchmarkSpec spec;
  spec.name = "quickstart";
  spec.soft_modules = 40;
  spec.num_nets = 80;
  spec.num_terminals = 12;
  spec.outline_mm2 = 9.0;   // 3 mm x 3 mm per die, two dies stacked
  spec.power_w = 3.0;
  Floorplan3D chip = benchgen::generate(spec, /*seed=*/42);

  // 2. The thermal side-channel-aware setup (Sec. 7 of the DAC'17 paper):
  //    classical criteria + correlation + spatial entropy, TSC-aware
  //    voltage assignment, and dummy-TSV post-processing.
  floorplan::FloorplannerOptions options =
      floorplan::Floorplanner::tsc_aware_setup();
  options.anneal.total_moves = 10000;  // quick demo budget
  options.anneal.stages = 25;
  options.dummy.samples_per_iteration = 8;
  options.dummy.max_iterations = 5;

  // 3. Run the full flow: SA floorplanning -> TSV planning -> voltage
  //    volumes -> activity sampling -> dummy TSVs -> detailed
  //    verification.
  const floorplan::Floorplanner planner(options);
  Rng rng(7);
  const floorplan::FloorplanMetrics m = planner.run(chip, rng);

  // 4. Results.
  std::cout << "tsc3d quickstart -- two-die 3D IC, " << chip.modules().size()
            << " modules\n\n";
  std::cout << "legal floorplan           : " << (m.legal ? "yes" : "no")
            << "\n";
  std::cout << "correlation r1 (bottom)   : " << m.correlation[0] << "\n";
  std::cout << "correlation r2 (top)      : " << m.correlation[1] << "\n";
  std::cout << "spatial entropy S1 / S2   : " << m.entropy[0] << " / "
            << m.entropy[1] << "\n";
  std::cout << "total power               : " << m.power_w << " W\n";
  std::cout << "critical delay            : " << m.critical_delay_ns
            << " ns\n";
  std::cout << "wirelength                : " << m.wirelength_m << " m\n";
  std::cout << "peak temperature          : " << m.peak_k << " K\n";
  std::cout << "signal TSVs               : " << m.signal_tsvs << "\n";
  std::cout << "dummy thermal TSVs        : " << m.dummy_tsvs << "\n";
  std::cout << "voltage volumes           : " << m.voltage_volumes << "\n";
  std::cout << "runtime                   : " << m.runtime_s << " s\n";

  std::cout << "\nThe lower r1/r2, the less an attacker learns from the\n"
               "thermal side channel; see the bench/ harness for the full\n"
               "paper reproduction.\n";
  return m.legal ? 0 : 1;
}
